"""Packet-descriptor extraction.

The paper's flow processor does not hash raw packets: a *packet descriptor*
with ``n`` selected tuple fields is extracted from the header and fed to the
sequencer (Section III-B).  :class:`DescriptorExtractor` performs that field
selection, so the Flow LUT can be configured for anything from a 2-tuple
(address pair) up to the standard 5-tuple; the paper's scalability claim
("scalable with respect to ... number of tuples") is exercised by varying the
field set.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

from repro.net.fivetuple import FlowKey
from repro.net.packet import Packet


class TupleField(enum.Enum):
    """Header fields that can participate in flow identification."""

    SRC_IP = "src_ip"
    DST_IP = "dst_ip"
    SRC_PORT = "src_port"
    DST_PORT = "dst_port"
    PROTOCOL = "protocol"


FIELD_WIDTHS_BITS = {
    TupleField.SRC_IP: 32,
    TupleField.DST_IP: 32,
    TupleField.SRC_PORT: 16,
    TupleField.DST_PORT: 16,
    TupleField.PROTOCOL: 8,
}

FIVE_TUPLE: Tuple[TupleField, ...] = (
    TupleField.DST_IP,
    TupleField.SRC_IP,
    TupleField.DST_PORT,
    TupleField.SRC_PORT,
    TupleField.PROTOCOL,
)
"""The standard 5-tuple in the order the paper lists it."""


@dataclass(frozen=True)
class PacketDescriptor:
    """What the header parser hands to the sequencer.

    ``key_bytes`` is the concatenation of the selected tuple fields; ``key``
    keeps the originating :class:`FlowKey` for bookkeeping, and
    ``length_bytes`` / ``timestamp_ps`` carry the per-packet data the flow
    state block accumulates.
    """

    key_bytes: bytes
    key: FlowKey
    length_bytes: int
    timestamp_ps: int
    tcp_flags: int = 0

    @property
    def key_bits(self) -> int:
        return len(self.key_bytes) * 8

    def as_int(self) -> int:
        return int.from_bytes(self.key_bytes, "big")


class DescriptorExtractor:
    """Extracts n-tuple descriptors from packets.

    Parameters
    ----------
    fields: which header fields form the flow identity; defaults to the
        standard 5-tuple.
    bidirectional: when ``True`` the two directions of a connection map to
        the same descriptor (useful for stateful inspection applications).
    """

    def __init__(
        self,
        fields: Optional[Sequence[TupleField]] = None,
        bidirectional: bool = False,
    ) -> None:
        selected = tuple(fields) if fields is not None else FIVE_TUPLE
        if not selected:
            raise ValueError("at least one tuple field is required")
        if len(set(selected)) != len(selected):
            raise ValueError("duplicate tuple fields")
        self.fields = selected
        self.bidirectional = bidirectional
        self.packets_parsed = 0

    @property
    def key_bits(self) -> int:
        """Width of the extracted descriptor key in bits."""
        return sum(FIELD_WIDTHS_BITS[field] for field in self.fields)

    @property
    def key_bytes(self) -> int:
        return (self.key_bits + 7) // 8

    def _field_value(self, key: FlowKey, field: TupleField) -> Tuple[int, int]:
        width = FIELD_WIDTHS_BITS[field]
        return getattr(key, field.value), width

    def extract(self, packet: Packet) -> PacketDescriptor:
        """Build the descriptor for ``packet``."""
        self.packets_parsed += 1
        key = packet.key.bidirectional() if self.bidirectional else packet.key
        value = 0
        total_bits = 0
        for field in self.fields:
            field_value, width = self._field_value(key, field)
            value = (value << width) | field_value
            total_bits += width
        key_bytes = value.to_bytes((total_bits + 7) // 8, "big")
        return PacketDescriptor(
            key_bytes=key_bytes,
            key=key,
            length_bytes=packet.length_bytes,
            timestamp_ps=packet.timestamp_ps,
            tcp_flags=packet.tcp_flags,
        )

    def extract_many(self, packets: Sequence[Packet]) -> list:
        """Descriptors for a sequence of packets (in order)."""
        return [self.extract(packet) for packet in packets]

"""Packet substrate: headers, flow keys, descriptor extraction and line-rate math."""

from repro.net.ethernet import (
    LinkSpec,
    achievable_link_gbps,
    required_packet_rate_mpps,
)
from repro.net.fivetuple import FlowKey
from repro.net.packet import Packet, TCP_FLAGS
from repro.net.parser import DescriptorExtractor, PacketDescriptor, TupleField

__all__ = [
    "DescriptorExtractor",
    "FlowKey",
    "LinkSpec",
    "Packet",
    "PacketDescriptor",
    "TCP_FLAGS",
    "TupleField",
    "achievable_link_gbps",
    "required_packet_rate_mpps",
]

"""A minimal packet model.

Only the fields the flow processor consumes are represented: the 5-tuple,
the layer-1 length (used by line-rate accounting and per-flow byte counters),
an arrival timestamp and the TCP flags (used by the flow-state housekeeping
to detect FIN/RST terminated flows).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.net.fivetuple import FlowKey

TCP_FLAGS = {
    "FIN": 0x01,
    "SYN": 0x02,
    "RST": 0x04,
    "PSH": 0x08,
    "ACK": 0x10,
    "URG": 0x20,
}

ETHERNET_HEADER_BYTES = 14
ETHERNET_FCS_BYTES = 4
ETHERNET_PREAMBLE_BYTES = 8
MIN_L2_FRAME_BYTES = 64
MIN_L1_FRAME_BYTES = MIN_L2_FRAME_BYTES + ETHERNET_PREAMBLE_BYTES  # 72, as used in Section V-B


@dataclass
class Packet:
    """One packet as seen by the flow processor."""

    key: FlowKey
    length_bytes: int = MIN_L2_FRAME_BYTES
    timestamp_ps: int = 0
    tcp_flags: int = 0
    sequence: Optional[int] = None
    payload: bytes = field(default=b"", repr=False)

    def __post_init__(self) -> None:
        if self.length_bytes <= 0:
            raise ValueError(f"length_bytes must be positive, got {self.length_bytes}")
        if not 0 <= self.tcp_flags <= 0xFF:
            raise ValueError(f"tcp_flags out of range: {self.tcp_flags}")

    @property
    def l1_length_bytes(self) -> int:
        """Layer-1 length (frame plus preamble/SFD), as used by the paper."""
        return self.length_bytes + ETHERNET_PREAMBLE_BYTES

    def has_flag(self, flag: str) -> bool:
        """Whether the named TCP flag (e.g. ``"FIN"``) is set."""
        return bool(self.tcp_flags & TCP_FLAGS[flag])

    @property
    def terminates_flow(self) -> bool:
        """FIN or RST packets terminate a TCP flow."""
        return bool(self.tcp_flags & (TCP_FLAGS["FIN"] | TCP_FLAGS["RST"]))

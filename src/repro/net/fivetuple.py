"""The 5-tuple flow key.

Packets sharing destination/source address, destination/source port and
protocol belong to the same flow (paper Section III-B).  :class:`FlowKey`
is the canonical, hashable representation used throughout the repository;
its :meth:`pack` form (13 bytes / 104 bits) is what the hardware hash
functions and the DDR3-resident table entries operate on.
"""

from __future__ import annotations

import ipaddress
from dataclasses import dataclass
from typing import Union

IPLike = Union[int, str]

PROTO_TCP = 6
PROTO_UDP = 17
PROTO_ICMP = 1

FLOW_KEY_BITS = 104
FLOW_KEY_BYTES = 13


def _ip_to_int(value: IPLike) -> int:
    if isinstance(value, int):
        if not 0 <= value <= 0xFFFFFFFF:
            raise ValueError(f"IPv4 address out of range: {value}")
        return value
    return int(ipaddress.IPv4Address(value))


@dataclass(frozen=True, order=True)
class FlowKey:
    """An IPv4 5-tuple.

    Addresses may be given as dotted strings or integers; they are stored as
    integers so the key is cheap to hash and pack.
    """

    src_ip: int
    dst_ip: int
    src_port: int
    dst_port: int
    protocol: int

    def __post_init__(self) -> None:
        object.__setattr__(self, "src_ip", _ip_to_int(self.src_ip))
        object.__setattr__(self, "dst_ip", _ip_to_int(self.dst_ip))
        for name in ("src_port", "dst_port"):
            value = getattr(self, name)
            if not 0 <= value <= 0xFFFF:
                raise ValueError(f"{name} out of range: {value}")
        if not 0 <= self.protocol <= 0xFF:
            raise ValueError(f"protocol out of range: {self.protocol}")

    def pack(self) -> bytes:
        """13-byte wire representation: src_ip, dst_ip, src_port, dst_port, proto."""
        return (
            self.src_ip.to_bytes(4, "big")
            + self.dst_ip.to_bytes(4, "big")
            + self.src_port.to_bytes(2, "big")
            + self.dst_port.to_bytes(2, "big")
            + self.protocol.to_bytes(1, "big")
        )

    @classmethod
    def unpack(cls, data: bytes) -> "FlowKey":
        """Inverse of :meth:`pack`."""
        if len(data) != FLOW_KEY_BYTES:
            raise ValueError(f"expected {FLOW_KEY_BYTES} bytes, got {len(data)}")
        return cls(
            src_ip=int.from_bytes(data[0:4], "big"),
            dst_ip=int.from_bytes(data[4:8], "big"),
            src_port=int.from_bytes(data[8:10], "big"),
            dst_port=int.from_bytes(data[10:12], "big"),
            protocol=data[12],
        )

    def as_int(self) -> int:
        """The key as a 104-bit integer (convenient for H3 hashing)."""
        return int.from_bytes(self.pack(), "big")

    def reversed(self) -> "FlowKey":
        """The key of the reverse direction of this flow."""
        return FlowKey(
            src_ip=self.dst_ip,
            dst_ip=self.src_ip,
            src_port=self.dst_port,
            dst_port=self.src_port,
            protocol=self.protocol,
        )

    def bidirectional(self) -> "FlowKey":
        """A direction-independent canonical key (smaller endpoint first)."""
        forward = (self.src_ip, self.src_port)
        backward = (self.dst_ip, self.dst_port)
        return self if forward <= backward else self.reversed()

    @property
    def src_ip_str(self) -> str:
        return str(ipaddress.IPv4Address(self.src_ip))

    @property
    def dst_ip_str(self) -> str:
        return str(ipaddress.IPv4Address(self.dst_ip))

    def __str__(self) -> str:
        return (
            f"{self.src_ip_str}:{self.src_port} -> "
            f"{self.dst_ip_str}:{self.dst_port} proto={self.protocol}"
        )

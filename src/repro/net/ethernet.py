"""Ethernet line-rate arithmetic (paper Section V-B).

The paper sizes its throughput requirement from the worst case at 40 GbE:
72-byte layer-1 frames (64-byte minimum frame plus 8-byte preamble/SFD) with
a standard 12-byte inter-frame gap need 59.52 Mpps; shrinking the gap to one
byte raises that to 68.49 Mpps.  These helpers reproduce that arithmetic for
any link speed so the feasibility benchmark can compare the Flow LUT's
descriptor rate against the requirement.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.net.packet import MIN_L1_FRAME_BYTES

STANDARD_IPG_BYTES = 12
WORST_CASE_IPG_BYTES = 1


@dataclass(frozen=True)
class LinkSpec:
    """An Ethernet link described by its nominal bit rate."""

    rate_gbps: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.rate_gbps <= 0:
            raise ValueError("rate_gbps must be positive")

    @property
    def rate_bps(self) -> float:
        return self.rate_gbps * 1e9

    def packet_rate_mpps(
        self,
        l1_frame_bytes: int = MIN_L1_FRAME_BYTES,
        ipg_bytes: int = STANDARD_IPG_BYTES,
    ) -> float:
        """Packets per second (in millions) this link carries at the given frame size."""
        return required_packet_rate_mpps(self.rate_gbps, l1_frame_bytes, ipg_bytes)


ETHERNET_10G = LinkSpec(10.0, "10GbE")
ETHERNET_40G = LinkSpec(40.0, "40GbE")
ETHERNET_100G = LinkSpec(100.0, "100GbE")


def required_packet_rate_mpps(
    link_gbps: float,
    l1_frame_bytes: int = MIN_L1_FRAME_BYTES,
    ipg_bytes: int = STANDARD_IPG_BYTES,
) -> float:
    """Packet rate (Mpps) needed to saturate ``link_gbps``.

    ``l1_frame_bytes`` is the layer-1 frame (including preamble/SFD); the
    inter-frame gap is added on top, matching the paper's calculation:
    40 Gbps / ((72 + 12) * 8 bits) = 59.52 Mpps.
    """
    if link_gbps <= 0:
        raise ValueError("link_gbps must be positive")
    if l1_frame_bytes <= 0:
        raise ValueError("l1_frame_bytes must be positive")
    if ipg_bytes < 0:
        raise ValueError("ipg_bytes must be non-negative")
    bits_per_packet = (l1_frame_bytes + ipg_bytes) * 8
    return link_gbps * 1e9 / bits_per_packet / 1e6


def achievable_link_gbps(
    packet_rate_mpps: float,
    l1_frame_bytes: int = MIN_L1_FRAME_BYTES,
    ipg_bytes: int = STANDARD_IPG_BYTES,
) -> float:
    """Link speed (Gbps) a given packet-processing rate can sustain.

    This is the inverse of :func:`required_packet_rate_mpps`; the paper uses
    it to argue that 94 Mdesc/s at minimum packet size corresponds to more
    than 50 Gbps.
    """
    if packet_rate_mpps < 0:
        raise ValueError("packet_rate_mpps must be non-negative")
    bits_per_packet = (l1_frame_bytes + ipg_bytes) * 8
    return packet_rate_mpps * 1e6 * bits_per_packet / 1e9

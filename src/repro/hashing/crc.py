"""Table-driven CRC hash functions (CRC-32 and CRC-16-CCITT)."""

from __future__ import annotations

import zlib
from typing import List, Union

KeyLike = Union[bytes, bytearray, int]

_IEEE_PARAMS = (0x04C11DB7, 32, 0xFFFFFFFF, 0xFFFFFFFF, True)
"""(polynomial, width, initial, final_xor, reflected) of IEEE 802.3 CRC-32 —
the parameter set :func:`zlib.crc32` implements in C."""


def _reflect_bits(value: int, width: int) -> int:
    result = 0
    for _ in range(width):
        result = (result << 1) | (value & 1)
        value >>= 1
    return result


def _build_table(polynomial: int, width: int) -> List[int]:
    """Build the 256-entry remainder table for an MSB-first CRC."""
    table = []
    top_bit = 1 << (width - 1)
    mask = (1 << width) - 1
    for byte in range(256):
        remainder = byte << (width - 8)
        for _ in range(8):
            if remainder & top_bit:
                remainder = ((remainder << 1) ^ polynomial) & mask
            else:
                remainder = (remainder << 1) & mask
        table.append(remainder)
    return table


def _build_reflected_table(polynomial: int, width: int) -> List[int]:
    """Build the 256-entry remainder table for an LSB-first (reflected) CRC."""
    reflected_poly = _reflect_bits(polynomial, width)
    table = []
    for byte in range(256):
        remainder = byte
        for _ in range(8):
            if remainder & 1:
                remainder = (remainder >> 1) ^ reflected_poly
            else:
                remainder >>= 1
        table.append(remainder)
    return table


class CRCHash:
    """Generic table-driven CRC.

    Parameters
    ----------
    polynomial: generator polynomial (without the leading term).
    width: CRC width in bits.
    initial: initial register value.
    final_xor: value XORed into the result.
    reflected: process bits LSB-first (the IEEE 802.3 / zlib convention) when
        ``True``; MSB-first (CCITT-FALSE style) otherwise.
    """

    def __init__(
        self,
        polynomial: int,
        width: int,
        initial: int = 0,
        final_xor: int = 0,
        reflected: bool = False,
    ) -> None:
        if width < 8 or width > 64:
            raise ValueError("CRC width must be between 8 and 64 bits")
        self.polynomial = polynomial
        self.width = width
        self.initial = initial
        self.final_xor = final_xor
        self.reflected = reflected
        self._table = (
            _build_reflected_table(polynomial, width) if reflected else _build_table(polynomial, width)
        )
        self._mask = (1 << width) - 1
        # Exactly the IEEE 802.3 parameter set is what zlib.crc32 computes;
        # byte keys then take the C implementation instead of the Python
        # table loop.  The table stays available either way — the columnar
        # hot path (repro.columns.hashing) vectorises over it directly.
        self._is_ieee = (polynomial, width, initial, final_xor, reflected) == _IEEE_PARAMS

    def _normalise(self, key: KeyLike) -> bytes:
        if isinstance(key, (bytes, bytearray, memoryview)):
            return bytes(key)
        if isinstance(key, int):
            if key < 0:
                raise ValueError("integer keys must be non-negative")
            length = max(1, (key.bit_length() + 7) // 8)
            return key.to_bytes(length, "big")
        raise TypeError(f"unsupported key type {type(key)!r}")

    def __call__(self, key: KeyLike) -> int:
        return self.hash(key)

    def hash(self, key: KeyLike) -> int:
        """CRC of ``key`` (bytes, bytearray, or non-negative int)."""
        if self._is_ieee:
            if isinstance(key, (bytes, bytearray, memoryview)):
                return zlib.crc32(key)
            return zlib.crc32(self._normalise(key))
        data = self._normalise(key)
        remainder = self.initial
        if self.reflected:
            for byte in data:
                index = (remainder ^ byte) & 0xFF
                remainder = (remainder >> 8) ^ self._table[index]
        else:
            shift = self.width - 8
            for byte in data:
                index = ((remainder >> shift) ^ byte) & 0xFF
                remainder = ((remainder << 8) ^ self._table[index]) & self._mask
        return (remainder ^ self.final_xor) & self._mask

    def bucket(self, key: KeyLike, table_size: int) -> int:
        """CRC of ``key`` reduced into ``[0, table_size)``."""
        if table_size <= 0:
            raise ValueError("table_size must be positive")
        return self.hash(key) % table_size

    @property
    def remainder_table(self) -> List[int]:
        """The 256-entry remainder table (copy).

        The columnar hot path (:mod:`repro.columns.hashing`) gathers through
        this table to hash a whole key column per byte position instead of
        per key.
        """
        return list(self._table)


CRC32 = CRCHash(
    polynomial=0x04C11DB7, width=32, initial=0xFFFFFFFF, final_xor=0xFFFFFFFF, reflected=True
)
"""IEEE 802.3 CRC-32 (reflected, the Ethernet FCS convention)."""

CRC16_CCITT = CRCHash(polynomial=0x1021, width=16, initial=0xFFFF)
"""CRC-16-CCITT (X.25 / HDLC)."""


def fold_hash(value: int, bits: int) -> int:
    """Fold an arbitrarily wide hash value down to ``bits`` bits by XOR."""
    if bits <= 0:
        raise ValueError("bits must be positive")
    mask = (1 << bits) - 1
    folded = 0
    while value:
        folded ^= value & mask
        value >>= bits
    return folded

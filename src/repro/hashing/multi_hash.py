"""Bundles of independent hash functions.

The two-choice Hash-CAM table needs two independent hash functions; Bloom
filters and d-left hashing need ``k``.  :class:`MultiHash` constructs a family
of independently seeded functions of a chosen kind and exposes them through a
single object so callers never accidentally reuse the same function twice.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Union

from repro.hashing.crc import CRCHash
from repro.hashing.h3 import H3Hash, KeyLike
from repro.hashing.tabulation import TabulationHash
from repro.sim.rng import SeedLike, make_rng

HashFunction = Callable[[KeyLike], int]


class MultiHash:
    """``k`` independent hash functions sharing an interface.

    Parameters
    ----------
    count: number of functions.
    key_bits: input key width in bits.
    output_bits: output width in bits.
    kind: ``"h3"`` (default), ``"tabulation"`` or ``"crc"``.  The CRC variant
        derives independence by prepending a per-function salt byte.
    seed: master seed; per-function seeds are drawn from it.
    """

    KINDS = ("h3", "tabulation", "crc")

    def __init__(
        self,
        count: int,
        key_bits: int,
        output_bits: int,
        kind: str = "h3",
        seed: SeedLike = None,
    ) -> None:
        if count <= 0:
            raise ValueError("count must be positive")
        if kind not in self.KINDS:
            raise ValueError(f"unknown hash kind {kind!r}; expected one of {self.KINDS}")
        self.count = count
        self.key_bits = key_bits
        self.output_bits = output_bits
        self.kind = kind
        rng = make_rng(seed)
        self._functions: List[HashFunction] = []
        key_bytes = (key_bits + 7) // 8
        for index in range(count):
            sub_seed = rng.getrandbits(64)
            if kind == "h3":
                self._functions.append(H3Hash(key_bits, output_bits, seed=sub_seed))
            elif kind == "tabulation":
                self._functions.append(TabulationHash(key_bytes, output_bits, seed=sub_seed))
            else:
                crc = CRCHash(polynomial=0x04C11DB7, width=32, initial=sub_seed & 0xFFFFFFFF)
                mask = (1 << output_bits) - 1
                salt = bytes([index & 0xFF])

                def crc_fn(key: KeyLike, _crc=crc, _mask=mask, _salt=salt) -> int:
                    data = key if isinstance(key, (bytes, bytearray)) else _int_to_bytes(key)
                    return _crc.hash(_salt + bytes(data)) & _mask

                self._functions.append(crc_fn)

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, index: int) -> HashFunction:
        return self._functions[index]

    def __iter__(self):
        return iter(self._functions)

    def hashes(self, key: KeyLike) -> List[int]:
        """All ``count`` hash values of ``key``."""
        return [fn(key) for fn in self._functions]

    def indices(self, key: KeyLike, table_size: int) -> List[int]:
        """All ``count`` hash values reduced into ``[0, table_size)``."""
        if table_size <= 0:
            raise ValueError("table_size must be positive")
        return [fn(key) % table_size for fn in self._functions]


def _int_to_bytes(value: Union[int, bytes, bytearray]) -> bytes:
    if isinstance(value, (bytes, bytearray)):
        return bytes(value)
    if value < 0:
        raise ValueError("integer keys must be non-negative")
    length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")

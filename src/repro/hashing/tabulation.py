"""Simple tabulation hashing.

Tabulation hashing splits the key into bytes and XORs together one random
table entry per byte position.  It is 3-independent, cheap in hardware
(block-RAM lookups plus an XOR tree), and serves here both as an alternative
hash for the Flow LUT and as a reference point in hash-quality tests.
"""

from __future__ import annotations

from typing import Union

from repro.sim.rng import SeedLike, make_rng

KeyLike = Union[int, bytes, bytearray]

# Table build memo for integer-seeded hashes.  make_rng(int) is a fresh,
# deterministic stream, so two hashes built from the same (geometry, seed)
# get byte-identical tables — and the telemetry plane builds thousands of
# them: every DistinctCounter of a SuperSpreaderDetector shares one
# resolved seed, so before this memo each newly tracked source re-rolled
# the same 256-entry tables (dominating cluster ingest profiles).  Tables
# are immutable after construction, so sharing the lists is safe.  Seeds
# that are None (entropy) or a live Random (stateful stream) bypass the
# memo.  The cache is bounded; eviction only costs a rebuild.
_TABLE_CACHE: dict = {}
_TABLE_CACHE_MAX = 128


def _build_tables(key_bytes: int, output_bits: int, seed: SeedLike) -> list:
    rng = make_rng(seed)
    return [
        [rng.getrandbits(output_bits) for _ in range(256)] for _ in range(key_bytes)
    ]


class TabulationHash:
    """Tabulation hash over fixed-length byte strings.

    Parameters
    ----------
    key_bytes: length of the keys in bytes (shorter keys are zero-padded on
        the left, longer keys raise).
    output_bits: width of the hash value.
    seed: seed or shared :class:`random.Random`.
    """

    def __init__(self, key_bytes: int, output_bits: int, seed: SeedLike = None) -> None:
        if key_bytes <= 0:
            raise ValueError("key_bytes must be positive")
        if output_bits <= 0:
            raise ValueError("output_bits must be positive")
        self.key_bytes = key_bytes
        self.output_bits = output_bits
        if isinstance(seed, int):
            cache_key = (key_bytes, output_bits, seed)
            tables = _TABLE_CACHE.get(cache_key)
            if tables is None:
                if len(_TABLE_CACHE) >= _TABLE_CACHE_MAX:
                    _TABLE_CACHE.pop(next(iter(_TABLE_CACHE)))
                tables = _TABLE_CACHE[cache_key] = _build_tables(
                    key_bytes, output_bits, seed
                )
            self._tables = tables
        else:
            self._tables = _build_tables(key_bytes, output_bits, seed)
        self._mask = (1 << output_bits) - 1

    def _normalise(self, key: KeyLike) -> bytes:
        if isinstance(key, int):
            if key < 0:
                raise ValueError("integer keys must be non-negative")
            key = key.to_bytes(self.key_bytes, "big")
        data = bytes(key)
        if len(data) > self.key_bytes:
            raise ValueError(f"key longer than {self.key_bytes} bytes")
        if len(data) < self.key_bytes:
            data = b"\x00" * (self.key_bytes - len(data)) + data
        return data

    def __call__(self, key: KeyLike) -> int:
        return self.hash(key)

    def hash(self, key: KeyLike) -> int:
        data = self._normalise(key)
        result = 0
        for position, byte in enumerate(data):
            result ^= self._tables[position][byte]
        return result & self._mask

    def bucket(self, key: KeyLike, table_size: int) -> int:
        if table_size <= 0:
            raise ValueError("table_size must be positive")
        return self.hash(key) % table_size

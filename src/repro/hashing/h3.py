"""The H3 universal hash family.

An H3 hash of an ``n``-bit key to an ``m``-bit value is defined by an
``n x m`` random binary matrix ``Q``: the output is the XOR of the rows of
``Q`` selected by the set bits of the key.  In hardware this is a tree of XOR
gates, which is why H3 is the de-facto hash family in FPGA packet-processing
designs (and a natural choice for the paper's two pre-selected hash
functions).
"""

from __future__ import annotations

from typing import Optional, Union

from repro.sim.rng import SeedLike, make_rng

KeyLike = Union[int, bytes, bytearray]


def _key_to_int(key: KeyLike) -> int:
    if isinstance(key, (bytes, bytearray)):
        return int.from_bytes(bytes(key), "big")
    if isinstance(key, int):
        if key < 0:
            raise ValueError("integer keys must be non-negative")
        return key
    raise TypeError(f"unsupported key type {type(key)!r}")


class H3Hash:
    """One member of the H3 family.

    Parameters
    ----------
    key_bits: width of the input keys in bits.  Longer inputs raise.
    output_bits: width of the hash value.
    seed: seed (or shared :class:`random.Random`) selecting the member.
    """

    def __init__(self, key_bits: int, output_bits: int, seed: SeedLike = None) -> None:
        if key_bits <= 0:
            raise ValueError("key_bits must be positive")
        if output_bits <= 0:
            raise ValueError("output_bits must be positive")
        self.key_bits = key_bits
        self.output_bits = output_bits
        rng = make_rng(seed)
        mask = (1 << output_bits) - 1
        self._rows = [rng.getrandbits(output_bits) & mask for _ in range(key_bits)]
        self._mask = mask

    def __call__(self, key: KeyLike) -> int:
        return self.hash(key)

    def hash(self, key: KeyLike) -> int:
        """Hash ``key`` to an ``output_bits``-wide integer."""
        value = _key_to_int(key)
        if value >> self.key_bits:
            raise ValueError(
                f"key has more than {self.key_bits} bits: {value.bit_length()} bits"
            )
        result = 0
        rows = self._rows
        index = 0
        while value:
            if value & 1:
                result ^= rows[index]
            value >>= 1
            index += 1
        return result & self._mask

    def bucket(self, key: KeyLike, table_size: int) -> int:
        """Hash ``key`` into ``[0, table_size)``."""
        if table_size <= 0:
            raise ValueError("table_size must be positive")
        return self.hash(key) % table_size

    @property
    def matrix(self) -> list:
        """The defining matrix rows (read-only copy)."""
        return list(self._rows)

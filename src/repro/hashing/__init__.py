"""Hardware-style hash functions.

Flow lookup tables in hardware use cheap, XOR-heavy universal hash functions
rather than cryptographic ones.  This package provides the families typically
implemented on FPGAs and referenced by the paper's related work:

* :class:`~repro.hashing.h3.H3Hash` — the H3 family (a random binary matrix
  multiplied with the key over GF(2)), the classic FPGA choice.
* :mod:`repro.hashing.crc` — CRC-32 / CRC-16-CCITT, table-driven.
* :class:`~repro.hashing.tabulation.TabulationHash` — per-byte lookup tables.
* :class:`~repro.hashing.multi_hash.MultiHash` — a bundle of ``k`` independent
  functions, used by the two-choice scheme, Bloom filters and d-left hashing.
"""

from repro.hashing.crc import CRC16_CCITT, CRC32, CRCHash, fold_hash
from repro.hashing.h3 import H3Hash
from repro.hashing.multi_hash import MultiHash
from repro.hashing.tabulation import TabulationHash

__all__ = [
    "CRC16_CCITT",
    "CRC32",
    "CRCHash",
    "H3Hash",
    "MultiHash",
    "TabulationHash",
    "fold_hash",
]

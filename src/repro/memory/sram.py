"""QDR-SRAM model.

The paper contrasts its DDR3 design with the earlier SRAM-based Hash-CAM
circuit (Yang 2012, reference [11]) which used QDRII SRAM: very low, fixed
access latency and separate read/write ports, but a total density capped at
144 Mbit — enough for roughly 128 K flow entries rather than 8 M.  This model
is used by the :mod:`repro.baselines.sram_hashcam` baseline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.memory.commands import MemoryOp, MemoryRequest
from repro.sim.engine import Simulator
from repro.sim.stats import RunningStats


@dataclass(frozen=True)
class QDRSRAMConfig:
    """QDRII+ SRAM configuration.

    The defaults model a 144-Mbit QDRII+ part with a 36-bit word, 550 MHz
    clock and 2-cycle read latency.
    """

    capacity_mbits: int = 144
    word_bits: int = 36
    clock_hz: float = 550e6
    read_latency_cycles: int = 2
    write_latency_cycles: int = 1

    @property
    def period_ps(self) -> int:
        return int(round(1e12 / self.clock_hz))

    @property
    def capacity_bits(self) -> int:
        return self.capacity_mbits * (1 << 20)

    @property
    def words(self) -> int:
        return self.capacity_bits // self.word_bits


class QDRSRAM:
    """A dual-port (separate read and write) SRAM with fixed latency.

    Each port accepts at most one word access per clock cycle; requests for
    more than one word occupy the port for consecutive cycles.  The interface
    mirrors :class:`repro.memory.controller.DDR3Controller.submit` so the
    baselines can swap memories without changing the lookup logic.
    """

    def __init__(
        self,
        sim: Simulator,
        config: Optional[QDRSRAMConfig] = None,
        queue_depth: int = 16,
        name: str = "qdr_sram",
    ) -> None:
        self.sim = sim
        self.config = config or QDRSRAMConfig()
        self.queue_depth = queue_depth
        self.name = name
        self._read_port_free_ps = 0
        self._write_port_free_ps = 0
        self._outstanding = 0
        self.reads = 0
        self.writes = 0
        self.rejected = 0
        self.latency_stats = RunningStats(name=f"{name}-latency-ps")
        self._drain_callbacks: List = []

    @property
    def outstanding(self) -> int:
        return self._outstanding

    @property
    def busy(self) -> bool:
        return self._outstanding > 0

    def can_accept(self) -> bool:
        return self._outstanding < self.queue_depth

    def on_drain(self, callback) -> None:
        self._drain_callbacks.append(callback)

    def submit(self, request: MemoryRequest) -> bool:
        """Queue a word (or multi-word) access; ``bursts`` counts words here."""
        if not self.can_accept():
            self.rejected += 1
            return False
        config = self.config
        now = self.sim.now
        request.submit_ps = now
        period = config.period_ps
        words = request.bursts
        if request.is_read:
            start = max(now, self._read_port_free_ps)
            self._read_port_free_ps = start + words * period
            complete = start + (config.read_latency_cycles + words) * period
            self.reads += words
        else:
            start = max(now, self._write_port_free_ps)
            self._write_port_free_ps = start + words * period
            complete = start + (config.write_latency_cycles + words) * period
            self.writes += words
        request.issue_ps = start
        request.complete_ps = complete
        request.row_hit = True
        self._outstanding += 1
        self.sim.schedule_at(complete, self._complete, request)
        return True

    def _complete(self, request: MemoryRequest) -> None:
        self._outstanding -= 1
        self.latency_stats.record(self.sim.now - (request.submit_ps or self.sim.now))
        if request.callback is not None:
            request.callback(request, self.sim.now)
        for callback in self._drain_callbacks:
            callback()

    def report(self) -> dict:
        return {
            "name": self.name,
            "reads": self.reads,
            "writes": self.writes,
            "rejected": self.rejected,
            "mean_latency_ns": self.latency_stats.mean / 1000.0,
            "capacity_mbits": self.config.capacity_mbits,
        }

"""Per-bank state tracked by the DDR3 device model."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class BankState(enum.Enum):
    """Simplified bank state: a bank either has a row open or it does not."""

    IDLE = "idle"
    ACTIVE = "active"


@dataclass
class Bank:
    """Timing state of one DRAM bank.

    All ``*_ps`` fields are absolute simulation times (picoseconds) describing
    the earliest instant at which the named command may legally be issued to
    this bank, given the commands issued so far.
    """

    index: int
    open_row: Optional[int] = None
    activate_allowed_ps: int = 0
    cas_allowed_ps: int = 0
    precharge_allowed_ps: int = 0
    last_activate_ps: int = -(10**18)

    activates: int = field(default=0)
    precharges: int = field(default=0)
    row_hits: int = field(default=0)
    row_conflicts: int = field(default=0)
    row_empty: int = field(default=0)

    @property
    def state(self) -> BankState:
        return BankState.ACTIVE if self.open_row is not None else BankState.IDLE

    def classify_access(self, row: int) -> str:
        """Classify an access to ``row`` as ``"hit"``, ``"empty"`` or ``"conflict"``."""
        if self.open_row is None:
            return "empty"
        if self.open_row == row:
            return "hit"
        return "conflict"

    def record_activate(self, row: int, time_ps: int) -> None:
        self.open_row = row
        self.last_activate_ps = time_ps
        self.activates += 1

    def record_precharge(self, time_ps: int) -> None:
        self.open_row = None
        self.precharges += 1

    def stats(self) -> dict:
        return {
            "bank": self.index,
            "activates": self.activates,
            "precharges": self.precharges,
            "row_hits": self.row_hits,
            "row_empty": self.row_empty,
            "row_conflicts": self.row_conflicts,
        }

"""Multi-bank DDR3 device model.

The device is a *reservation* model: callers ask it to perform a read or
write of one or more bursts to a (bank, row, column) location, and the device
computes the earliest legal time for every command in the sequence given the
JEDEC constraints and the commands reserved so far.  This captures exactly the
effects the paper's architecture exploits and suffers from:

* row hits are cheap, row conflicts pay the row cycle time (tRC);
* activates to *different* banks can overlap another bank's data transfer,
  which is what the DLU's Bank Selector banks on (Section IV-A);
* read↔write bus turnaround wastes DQ cycles, which is why the Update block's
  Burst Write Generator batches writes (Section IV-B, Figure 3);
* the DQ bus carries BL/2 clock cycles of data per burst, so utilisation can
  be accounted exactly (Figure 3).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.memory.bank import Bank
from repro.memory.commands import Command, CommandType, MemoryOp
from repro.memory.timing import DDR3Geometry, DDR3Timing


@dataclass
class AccessResult:
    """Timing of one reserved access (possibly multiple consecutive bursts)."""

    op: MemoryOp
    bank: int
    row: int
    row_hit: bool
    first_command_ps: int
    cas_ps: int
    data_start_ps: int
    data_end_ps: int
    complete_ps: int
    commands: List[Command] = field(default_factory=list)


class DDR3Device:
    """One DDR3 memory set (a rank of devices behind one controller).

    Parameters
    ----------
    timing: speed-grade timing parameters.
    geometry: bank/row/column organisation and data-bus width.
    auto_precharge: when ``True`` every access closes its row afterwards
        (closed-page); when ``False`` rows stay open until a conflict or a
        refresh closes them (open-page).
    refresh_enabled: model periodic REFRESH commands (tREFI / tRFC).
    """

    def __init__(
        self,
        timing: DDR3Timing,
        geometry: DDR3Geometry,
        auto_precharge: bool = False,
        refresh_enabled: bool = True,
    ) -> None:
        self.timing = timing
        self.geometry = geometry
        self.auto_precharge = auto_precharge
        self.refresh_enabled = refresh_enabled

        self.banks = [Bank(index=i) for i in range(geometry.banks)]
        self._last_activate_any_ps = -(10**18)
        self._activate_window: Deque[int] = deque(maxlen=4)
        self._last_read_cas_ps = -(10**18)
        self._last_write_cas_ps = -(10**18)
        self._last_cas_ps = -(10**18)
        self._next_refresh_ps = timing.ps(timing.t_refi) if refresh_enabled else None

        self.data_bus_busy_ps = 0
        self.first_activity_ps: Optional[int] = None
        self.last_activity_ps: int = 0
        self.reads = 0
        self.writes = 0
        self.refreshes = 0
        self.row_hits = 0
        self.row_conflicts = 0
        self.row_empty = 0

    # ------------------------------------------------------------------ #
    # Internal helpers
    # ------------------------------------------------------------------ #

    def _t(self, cycles: int) -> int:
        return self.timing.ps(cycles)

    def _maybe_refresh(self, now_ps: int) -> int:
        """Perform any overdue refreshes; returns the earliest time normal
        commands may resume."""
        if self._next_refresh_ps is None:
            return now_ps
        resume = now_ps
        while self._next_refresh_ps <= resume:
            # All banks must be precharged before REFRESH; model this by
            # starting the refresh once every bank could have been precharged.
            start = max(
                resume,
                self._next_refresh_ps,
                max(bank.precharge_allowed_ps for bank in self.banks),
            )
            end = start + self._t(self.timing.t_rfc)
            for bank in self.banks:
                bank.open_row = None
                bank.activate_allowed_ps = max(bank.activate_allowed_ps, end)
                bank.cas_allowed_ps = max(bank.cas_allowed_ps, end)
                bank.precharge_allowed_ps = max(bank.precharge_allowed_ps, end)
            self.refreshes += 1
            self._next_refresh_ps += self._t(self.timing.t_refi)
            resume = end
        return resume

    def _activate_constraints(self, bank: Bank, earliest: int) -> int:
        """Earliest ACT time respecting tRRD, tFAW, tRC and bank state."""
        t = max(earliest, bank.activate_allowed_ps)
        t = max(t, bank.last_activate_ps + self._t(self.timing.t_rc))
        t = max(t, self._last_activate_any_ps + self._t(self.timing.t_rrd))
        if len(self._activate_window) == 4:
            t = max(t, self._activate_window[0] + self._t(self.timing.t_faw))
        return t

    def _cas_constraints(self, op: MemoryOp, earliest: int) -> int:
        """Earliest CAS time respecting tCCD and bus-turnaround rules."""
        timing = self.timing
        t = max(earliest, self._last_cas_ps + self._t(timing.t_ccd))
        if op is MemoryOp.READ:
            t = max(t, self._last_write_cas_ps + self._t(timing.write_to_read))
        else:
            t = max(t, self._last_read_cas_ps + self._t(timing.read_to_write))
        return t

    def _record_data_burst(self, start_ps: int, end_ps: int) -> None:
        self.data_bus_busy_ps += end_ps - start_ps
        if self.first_activity_ps is None:
            self.first_activity_ps = start_ps
        self.last_activity_ps = max(self.last_activity_ps, end_ps)

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def access(
        self,
        op: MemoryOp,
        bank_index: int,
        row: int,
        column: int,
        now_ps: int,
        bursts: int = 1,
    ) -> AccessResult:
        """Reserve a read or write of ``bursts`` consecutive bursts.

        Returns the full command/data timing.  The device state is updated so
        subsequent calls observe this reservation.
        """
        if not 0 <= bank_index < self.geometry.banks:
            raise ValueError(f"bank {bank_index} out of range 0..{self.geometry.banks - 1}")
        if not 0 <= row < self.geometry.rows:
            raise ValueError(f"row {row} out of range 0..{self.geometry.rows - 1}")
        if bursts <= 0:
            raise ValueError("bursts must be positive")

        timing = self.timing
        bank = self.banks[bank_index]
        now_ps = self._maybe_refresh(now_ps)

        commands: List[Command] = []
        kind = self.banks[bank_index].classify_access(row)
        first_command_ps = now_ps

        if kind == "hit":
            self.row_hits += 1
            bank.row_hits += 1
            cas_earliest = max(now_ps, bank.cas_allowed_ps)
        else:
            if kind == "conflict":
                self.row_conflicts += 1
                bank.row_conflicts += 1
                pre_ps = max(now_ps, bank.precharge_allowed_ps)
                commands.append(Command(CommandType.PRECHARGE, bank_index, issue_ps=pre_ps))
                bank.record_precharge(pre_ps)
                act_earliest = pre_ps + self._t(timing.t_rp)
            else:
                self.row_empty += 1
                bank.row_empty += 1
                act_earliest = now_ps
            act_ps = self._activate_constraints(bank, act_earliest)
            commands.append(Command(CommandType.ACTIVATE, bank_index, row=row, issue_ps=act_ps))
            bank.record_activate(row, act_ps)
            self._last_activate_any_ps = act_ps
            self._activate_window.append(act_ps)
            first_command_ps = commands[0].issue_ps
            cas_earliest = act_ps + self._t(timing.t_rcd)
            bank.cas_allowed_ps = max(bank.cas_allowed_ps, cas_earliest)
            # tRAS lower-bounds the following precharge.
            bank.precharge_allowed_ps = max(
                bank.precharge_allowed_ps, act_ps + self._t(timing.t_ras)
            )

        cas_kind = CommandType.READ if op is MemoryOp.READ else CommandType.WRITE
        data_latency = timing.read_latency if op is MemoryOp.READ else timing.write_latency
        burst_ps = self._t(timing.burst_cycles)

        cas_times: List[int] = []
        cas_ps = self._cas_constraints(op, max(cas_earliest, bank.cas_allowed_ps))
        for i in range(bursts):
            if i:
                cas_ps = self._cas_constraints(op, cas_ps + self._t(timing.t_ccd))
            commands.append(
                Command(cas_kind, bank_index, row=row, column=column + i * timing.bl, issue_ps=cas_ps)
            )
            cas_times.append(cas_ps)
            data_start = cas_ps + self._t(data_latency)
            self._record_data_burst(data_start, data_start + burst_ps)

        first_cas_ps = cas_times[0]
        last_cas_ps = cas_times[-1]
        if not commands or commands[0].issue_ps > first_cas_ps:
            first_command_ps = first_cas_ps
        else:
            first_command_ps = commands[0].issue_ps

        data_start_ps = first_cas_ps + self._t(data_latency)
        data_end_ps = last_cas_ps + self._t(data_latency) + burst_ps

        # Update global CAS trackers.
        self._last_cas_ps = last_cas_ps
        if op is MemoryOp.READ:
            self._last_read_cas_ps = last_cas_ps
            self.reads += bursts
            bank.precharge_allowed_ps = max(
                bank.precharge_allowed_ps, last_cas_ps + self._t(timing.t_rtp)
            )
        else:
            self._last_write_cas_ps = last_cas_ps
            self.writes += bursts
            bank.precharge_allowed_ps = max(
                bank.precharge_allowed_ps, last_cas_ps + self._t(timing.write_to_precharge)
            )
        bank.cas_allowed_ps = max(bank.cas_allowed_ps, last_cas_ps + self._t(timing.t_ccd))

        if self.auto_precharge:
            pre_ps = bank.precharge_allowed_ps
            commands.append(Command(CommandType.PRECHARGE, bank_index, issue_ps=pre_ps))
            bank.record_precharge(pre_ps)
            bank.activate_allowed_ps = max(bank.activate_allowed_ps, pre_ps + self._t(timing.t_rp))

        complete_ps = data_end_ps
        return AccessResult(
            op=op,
            bank=bank_index,
            row=row,
            row_hit=(kind == "hit"),
            first_command_ps=first_command_ps,
            cas_ps=first_cas_ps,
            data_start_ps=data_start_ps,
            data_end_ps=data_end_ps,
            complete_ps=complete_ps,
            commands=commands,
        )

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #

    @property
    def observed_window_ps(self) -> int:
        """Span between the first and last DQ-bus activity."""
        if self.first_activity_ps is None:
            return 0
        return self.last_activity_ps - self.first_activity_ps

    def dq_utilisation(self, window_ps: Optional[int] = None) -> float:
        """Fraction of the window during which the DQ bus carried data."""
        window = self.observed_window_ps if window_ps is None else window_ps
        if window <= 0:
            return 0.0
        return min(1.0, self.data_bus_busy_ps / window)

    def open_row(self, bank_index: int) -> Optional[int]:
        """Currently open row in ``bank_index`` (``None`` when precharged)."""
        return self.banks[bank_index].open_row

    def stats(self) -> dict:
        return {
            "timing": self.timing.name,
            "reads": self.reads,
            "writes": self.writes,
            "refreshes": self.refreshes,
            "row_hits": self.row_hits,
            "row_empty": self.row_empty,
            "row_conflicts": self.row_conflicts,
            "data_bus_busy_ps": self.data_bus_busy_ps,
            "observed_window_ps": self.observed_window_ps,
            "dq_utilisation": self.dq_utilisation(),
        }

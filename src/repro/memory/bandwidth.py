"""Analytical DQ-bus utilisation model (paper Figure 3).

Figure 3 of the paper plots the DQ bandwidth utilisation of a Micron
DDR3-1066 (-187E) device when the access stream consists of groups of ``N``
read bursts followed by ``N`` write bursts issued to the same row of a bank
(burst length 8).  Going from ``N = 1`` to ``N = 35`` improves utilisation
from roughly 20 % to roughly 90 %, because the fixed per-group cost (the row
cycle and the read↔write bus turnaround) is amortised over more data bursts.

Two variants are provided:

* ``include_row_cycle=True`` (default, matches the paper's curve): each group
  targets a fresh row, so the group cost also contains ACTIVATE, write
  recovery and PRECHARGE — exactly the pattern a hash-table lookup/update
  workload produces.
* ``include_row_cycle=False``: the row stays open across groups, isolating the
  pure bus-turnaround cost.
"""

from __future__ import annotations

from typing import Iterable, List, Tuple

from repro.memory.timing import DDR3Timing


def burst_group_utilisation(
    timing: DDR3Timing,
    bursts_per_direction: int,
    include_row_cycle: bool = True,
) -> float:
    """DQ utilisation for repeating groups of N reads then N writes.

    Parameters
    ----------
    timing: DDR3 speed grade.
    bursts_per_direction: ``N`` — the number of read bursts (and of write
        bursts) issued per group.
    include_row_cycle: whether each group opens (and afterwards closes) its
        own row, as in the paper's Figure 3.
    """
    n = bursts_per_direction
    if n <= 0:
        raise ValueError("bursts_per_direction must be positive")

    burst = timing.burst_cycles
    ccd = timing.t_ccd
    busy = 2 * n * burst

    # Command-to-command spacings within a group (in clock cycles).
    read_phase = (n - 1) * ccd
    write_phase = (n - 1) * ccd
    turnaround = timing.read_to_write

    if include_row_cycle:
        # ACT -> first RD, ..., last WR -> PRE -> next ACT; also bounded by tRC.
        first_read = timing.t_rcd
        last_write = first_read + read_phase + turnaround + write_phase
        precharge = max(last_write + timing.write_to_precharge, timing.t_ras)
        next_act = max(precharge + timing.t_rp, timing.t_rc)
        period = next_act
    else:
        # Row stays open: period is last write -> first read of the next group.
        period = read_phase + turnaround + write_phase + timing.write_to_read

    if period <= 0:
        return 1.0
    return min(1.0, busy / period)


def utilisation_sweep(
    timing: DDR3Timing,
    burst_counts: Iterable[int],
    include_row_cycle: bool = True,
) -> List[Tuple[int, float]]:
    """Utilisation for each burst-group size, as ``(N, utilisation)`` pairs."""
    return [
        (n, burst_group_utilisation(timing, n, include_row_cycle=include_row_cycle))
        for n in burst_counts
    ]


def bursts_needed_for_utilisation(
    timing: DDR3Timing,
    target: float,
    include_row_cycle: bool = True,
    limit: int = 1024,
) -> int:
    """Smallest group size whose utilisation reaches ``target`` (or ``limit``)."""
    if not 0.0 < target <= 1.0:
        raise ValueError("target must be in (0, 1]")
    for n in range(1, limit + 1):
        if burst_group_utilisation(timing, n, include_row_cycle=include_row_cycle) >= target:
            return n
    return limit

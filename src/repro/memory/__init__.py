"""DDR3 SDRAM substrate.

The paper's contribution is an architecture for hiding DDR3 SDRAM latency
behind bank-aware scheduling and burst batching, so a faithful reproduction
needs a DDR3 device/controller model that enforces the JEDEC-style timing
constraints the paper reasons about (row cycle time, read/write bus
turnaround, burst-oriented data transfer).  This package provides:

* :mod:`repro.memory.timing` — speed-grade parameter sets (DDR3-1066 -187E is
  the grade the paper's Figure 3 is computed from) and device geometry.
* :mod:`repro.memory.commands` — the DRAM command set and user-level
  :class:`~repro.memory.commands.MemoryRequest`.
* :mod:`repro.memory.bank` / :mod:`repro.memory.dram` — per-bank state machines
  and the multi-bank device model with DQ-bus occupancy accounting.
* :mod:`repro.memory.controller` — an in-order reservation controller with an
  FR-FCFS-style row-hit preference, modelling the "standard DDR3 memory
  controller" the paper places behind the Data Lookup Unit.
* :mod:`repro.memory.bandwidth` — the analytical DQ utilisation model used to
  regenerate Figure 3.
* :mod:`repro.memory.sram` — a QDR-SRAM model used by the SRAM Hash-CAM
  baseline (Yang 2012, reference [11]).
"""

from repro.memory.bandwidth import burst_group_utilisation, utilisation_sweep
from repro.memory.bank import Bank, BankState
from repro.memory.commands import CommandType, MemoryOp, MemoryRequest
from repro.memory.controller import AddressMapping, DDR3Controller, PagePolicy
from repro.memory.dram import DDR3Device
from repro.memory.sram import QDRSRAM
from repro.memory.timing import (
    DDR3_1066_187E,
    DDR3_1333,
    DDR3_1600,
    DDR3Geometry,
    DDR3Timing,
)

__all__ = [
    "AddressMapping",
    "Bank",
    "BankState",
    "CommandType",
    "DDR3Controller",
    "DDR3Device",
    "DDR3Geometry",
    "DDR3Timing",
    "DDR3_1066_187E",
    "DDR3_1333",
    "DDR3_1600",
    "MemoryOp",
    "MemoryRequest",
    "PagePolicy",
    "QDRSRAM",
    "burst_group_utilisation",
    "utilisation_sweep",
]

"""DDR3 memory controller model.

The paper explicitly places its Data Lookup Unit *in front of* "a standard
DDR3 memory controller" (Altera's UniPhy IP in the prototype): the DLU does
the application-aware reordering, the controller only enforces DRAM protocol
timing and offers a bounded command queue.  This module models that standard
controller: an in-order-ish reservation engine with a small lookahead window
that prefers row hits (FR-FCFS lite), a configurable page policy and a bounded
number of outstanding requests which provides the backpressure that ultimately
limits lookup throughput.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, List, Optional, Tuple

from repro.memory.commands import MemoryOp, MemoryRequest
from repro.memory.dram import DDR3Device
from repro.memory.timing import DDR3Geometry, DDR3Timing
from repro.sim.engine import Simulator
from repro.sim.stats import RunningStats


class PagePolicy(enum.Enum):
    """Row-buffer management policy."""

    OPEN = "open"
    CLOSED = "closed"


class AddressMapping:
    """Byte-address to (bank, row, column) decomposition.

    Two interleaving schemes are provided:

    * ``bank_interleaved`` (default): bank bits sit directly above the burst
      offset, so consecutive buckets rotate across all banks.  This is the
      layout the Flow LUT relies on ("the bank selector works to re-organize
      the input data into 8 banks", Section V-A).
    * ``row_major``: bank bits sit above the row bits, so large contiguous
      regions map to a single bank — the worst case for random lookups, used
      by ablation studies.
    """

    SCHEMES = ("bank_interleaved", "row_major")

    def __init__(self, geometry: DDR3Geometry, scheme: str = "bank_interleaved") -> None:
        if scheme not in self.SCHEMES:
            raise ValueError(f"unknown mapping scheme {scheme!r}; expected one of {self.SCHEMES}")
        self.geometry = geometry
        self.scheme = scheme
        self._burst_bytes = geometry.burst_bytes
        self._bursts_per_row = geometry.bursts_per_row

    def decompose(self, address: int) -> Tuple[int, int, int]:
        """Return ``(bank, row, column)`` for a byte address."""
        if address < 0:
            raise ValueError("address must be non-negative")
        geometry = self.geometry
        burst_index = address // self._burst_bytes
        if self.scheme == "bank_interleaved":
            bank = burst_index % geometry.banks
            remaining = burst_index // geometry.banks
            column_burst = remaining % self._bursts_per_row
            row = (remaining // self._bursts_per_row) % geometry.rows
        else:  # row_major
            column_burst = burst_index % self._bursts_per_row
            remaining = burst_index // self._bursts_per_row
            row = remaining % geometry.rows
            bank = (remaining // geometry.rows) % geometry.banks
        column = column_burst * geometry.burst_length
        return bank, row, column

    def compose(self, bank: int, row: int, column: int) -> int:
        """Inverse of :meth:`decompose` (column must be burst aligned)."""
        geometry = self.geometry
        column_burst = column // geometry.burst_length
        if self.scheme == "bank_interleaved":
            burst_index = (row * self._bursts_per_row + column_burst) * geometry.banks + bank
        else:
            burst_index = (bank * geometry.rows + row) * self._bursts_per_row + column_burst
        return burst_index * self._burst_bytes


@dataclass
class ControllerStats:
    """Aggregate controller statistics."""

    reads: int = 0
    writes: int = 0
    row_hits: int = 0
    row_misses: int = 0
    rejected: int = 0

    def as_dict(self) -> dict:
        total = self.row_hits + self.row_misses
        return {
            "reads": self.reads,
            "writes": self.writes,
            "row_hits": self.row_hits,
            "row_misses": self.row_misses,
            "row_hit_rate": self.row_hits / total if total else 0.0,
            "rejected": self.rejected,
        }


class DDR3Controller:
    """Event-driven controller front-end over a :class:`DDR3Device`.

    Parameters
    ----------
    sim: simulation engine driving completions.
    timing / geometry: DDR3 speed grade and organisation.
    mapping: address mapping (defaults to bank-interleaved).
    page_policy: open- or closed-page row management.
    queue_depth: maximum number of requests waiting to be issued.
    max_outstanding: maximum number of issued-but-incomplete requests; this is
        what creates backpressure towards the DLU.
    reorder_window: how many queued requests the controller inspects when
        preferring a row hit (FR-FCFS lite).  ``1`` makes it strictly FCFS.
    """

    def __init__(
        self,
        sim: Simulator,
        timing: DDR3Timing,
        geometry: DDR3Geometry,
        mapping: Optional[AddressMapping] = None,
        page_policy: PagePolicy = PagePolicy.OPEN,
        queue_depth: int = 16,
        max_outstanding: int = 8,
        reorder_window: int = 4,
        refresh_enabled: bool = True,
        name: str = "ddr3",
    ) -> None:
        if queue_depth <= 0:
            raise ValueError("queue_depth must be positive")
        if max_outstanding <= 0:
            raise ValueError("max_outstanding must be positive")
        if reorder_window <= 0:
            raise ValueError("reorder_window must be positive")
        self.sim = sim
        self.name = name
        self.timing = timing
        self.geometry = geometry
        self.mapping = mapping or AddressMapping(geometry)
        self.page_policy = page_policy
        self.queue_depth = queue_depth
        self.max_outstanding = max_outstanding
        self.reorder_window = reorder_window
        self.device = DDR3Device(
            timing,
            geometry,
            auto_precharge=(page_policy is PagePolicy.CLOSED),
            refresh_enabled=refresh_enabled,
        )
        self._pending: List[MemoryRequest] = []
        self._outstanding = 0
        self.stats = ControllerStats()
        self.latency_stats = RunningStats(name=f"{name}-latency-ps")
        self._drain_callbacks: List[Callable[[], None]] = []

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    @property
    def pending(self) -> int:
        return len(self._pending)

    @property
    def outstanding(self) -> int:
        return self._outstanding

    @property
    def busy(self) -> bool:
        return bool(self._pending) or self._outstanding > 0

    def can_accept(self) -> bool:
        """Whether a new request would be accepted right now."""
        return len(self._pending) < self.queue_depth

    def submit(self, request: MemoryRequest) -> bool:
        """Queue ``request``; returns ``False`` (and drops it) when full."""
        if not self.can_accept():
            self.stats.rejected += 1
            return False
        request.submit_ps = self.sim.now
        self._pending.append(request)
        self._try_issue()
        return True

    def on_drain(self, callback: Callable[[], None]) -> None:
        """Register a callback invoked whenever queue space frees up."""
        self._drain_callbacks.append(callback)

    # ------------------------------------------------------------------ #
    # Issue / completion
    # ------------------------------------------------------------------ #

    def _pick_index(self) -> int:
        """Pick the next request: oldest row hit within the reorder window,
        falling back to the oldest request."""
        window = self._pending[: self.reorder_window]
        for i, request in enumerate(window):
            bank, row, _ = self.mapping.decompose(request.address)
            if self.device.open_row(bank) == row:
                return i
        return 0

    def _try_issue(self) -> None:
        while self._pending and self._outstanding < self.max_outstanding:
            index = self._pick_index()
            request = self._pending.pop(index)
            bank, row, column = self.mapping.decompose(request.address)
            result = self.device.access(
                request.op, bank, row, column, now_ps=self.sim.now, bursts=request.bursts
            )
            request.issue_ps = result.cas_ps
            request.complete_ps = result.complete_ps
            request.row_hit = result.row_hit
            if request.is_read:
                self.stats.reads += 1
            else:
                self.stats.writes += 1
            if result.row_hit:
                self.stats.row_hits += 1
            else:
                self.stats.row_misses += 1
            self._outstanding += 1
            self.sim.schedule_at(result.complete_ps, self._complete, request)

    def _complete(self, request: MemoryRequest) -> None:
        self._outstanding -= 1
        if request.submit_ps is not None and request.complete_ps is not None:
            self.latency_stats.record(request.complete_ps - request.submit_ps)
        if request.callback is not None:
            request.callback(request, self.sim.now)
        self._try_issue()
        for callback in self._drain_callbacks:
            callback()

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def utilisation(self) -> float:
        """DQ-bus utilisation observed so far."""
        return self.device.dq_utilisation()

    def report(self) -> dict:
        report = self.stats.as_dict()
        report.update(
            {
                "name": self.name,
                "dq_utilisation": self.device.dq_utilisation(),
                "mean_latency_ns": self.latency_stats.mean / 1000.0,
                "max_latency_ns": (self.latency_stats.maximum / 1000.0) if self.latency_stats.count else 0.0,
                "device": self.device.stats(),
            }
        )
        return report

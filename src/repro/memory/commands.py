"""DRAM command set and the user-level memory request record."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class CommandType(enum.Enum):
    """JEDEC DDR3 commands modelled by the device."""

    ACTIVATE = "ACT"
    READ = "RD"
    WRITE = "WR"
    PRECHARGE = "PRE"
    REFRESH = "REF"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class MemoryOp(enum.Enum):
    """User-level operation carried by a :class:`MemoryRequest`."""

    READ = "read"
    WRITE = "write"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass
class Command:
    """A single DRAM command as issued on the command bus."""

    kind: CommandType
    bank: int
    row: int = 0
    column: int = 0
    issue_ps: int = 0


_request_ids = itertools.count()


@dataclass
class MemoryRequest:
    """A read or write of one or more consecutive bursts.

    Parameters
    ----------
    op: read or write.
    address: byte address within the memory set.
    bursts: number of consecutive BL-length bursts to transfer.
    callback: invoked as ``callback(request, complete_ps)`` when data is
        available (reads) or written (writes).
    metadata: opaque payload carried for the issuer (the DLU attaches the
        lookup request here).
    """

    op: MemoryOp
    address: int
    bursts: int = 1
    callback: Optional[Callable[["MemoryRequest", int], None]] = None
    metadata: Any = None
    request_id: int = field(default_factory=lambda: next(_request_ids))

    submit_ps: Optional[int] = None
    issue_ps: Optional[int] = None
    complete_ps: Optional[int] = None
    row_hit: Optional[bool] = None

    def __post_init__(self) -> None:
        if self.address < 0:
            raise ValueError(f"address must be non-negative, got {self.address}")
        if self.bursts <= 0:
            raise ValueError(f"bursts must be positive, got {self.bursts}")

    @property
    def is_read(self) -> bool:
        return self.op is MemoryOp.READ

    @property
    def is_write(self) -> bool:
        return self.op is MemoryOp.WRITE

    @property
    def latency_ps(self) -> Optional[int]:
        """Submit-to-complete latency, once the request has finished."""
        if self.submit_ps is None or self.complete_ps is None:
            return None
        return self.complete_ps - self.submit_ps

"""DDR3 timing parameter sets and device geometry.

All timing fields are expressed in memory-clock cycles (tCK) except
``t_ck_ps`` which defines the clock itself.  The presets are derived from
Micron's 1 Gb DDR3 SDRAM datasheet (the paper's reference [12]); the -187E
speed grade (DDR3-1066, tCK = 1.875 ns) is the one Figure 3 is calculated
from, while the FPGA prototype runs the memory I/O bus at 800 MHz
(DDR3-1600-class timings).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace


def _cycles(nanoseconds: float, t_ck_ns: float, minimum_ck: int = 0) -> int:
    """JEDEC-style conversion: ceil(ns / tCK), floored at a minimum cycle count."""
    return max(minimum_ck, int(math.ceil(round(nanoseconds / t_ck_ns, 6))))


@dataclass(frozen=True)
class DDR3Timing:
    """DDR3 timing constraints, in memory-clock cycles unless noted.

    Attributes
    ----------
    name: speed-grade label (e.g. ``"DDR3-1066 (-187E)"``).
    t_ck_ps: clock period in picoseconds.
    cl: CAS (read) latency.
    cwl: CAS write latency.
    al: additive latency (0 in all presets).
    bl: burst length (always 8 for DDR3).
    t_rcd: ACTIVATE to READ/WRITE delay.
    t_rp: PRECHARGE to ACTIVATE delay.
    t_rc: ACTIVATE to ACTIVATE delay, same bank (row cycle time).
    t_ras: ACTIVATE to PRECHARGE minimum.
    t_ccd: CAS to CAS delay (any bank).
    t_rtp: READ to PRECHARGE delay.
    t_wtr: end of write data to READ command delay.
    t_wr: end of write data to PRECHARGE delay (write recovery).
    t_rrd: ACTIVATE to ACTIVATE delay, different banks.
    t_faw: rolling window in which at most four ACTIVATEs may be issued.
    t_rfc: REFRESH cycle time.
    t_refi: average refresh interval.
    """

    name: str
    t_ck_ps: int
    cl: int
    cwl: int
    al: int
    bl: int
    t_rcd: int
    t_rp: int
    t_rc: int
    t_ras: int
    t_ccd: int
    t_rtp: int
    t_wtr: int
    t_wr: int
    t_rrd: int
    t_faw: int
    t_rfc: int
    t_refi: int

    @property
    def read_latency(self) -> int:
        """RL = AL + CL."""
        return self.al + self.cl

    @property
    def write_latency(self) -> int:
        """WL = AL + CWL."""
        return self.al + self.cwl

    @property
    def burst_cycles(self) -> int:
        """Clock cycles the DQ bus is occupied by one burst (BL/2, double data rate)."""
        return self.bl // 2

    @property
    def read_to_write(self) -> int:
        """Minimum READ-command to WRITE-command spacing (same rank).

        JEDEC: RL + tCCD + 2 - WL.
        """
        return self.read_latency + self.t_ccd + 2 - self.write_latency

    @property
    def write_to_read(self) -> int:
        """Minimum WRITE-command to READ-command spacing (same rank).

        JEDEC: WL + BL/2 + tWTR.
        """
        return self.write_latency + self.burst_cycles + self.t_wtr

    @property
    def write_to_precharge(self) -> int:
        """WRITE command to PRECHARGE of the same bank: WL + BL/2 + tWR."""
        return self.write_latency + self.burst_cycles + self.t_wr

    @property
    def freq_mhz(self) -> float:
        """Memory clock frequency in MHz (the data rate is twice this)."""
        return 1e6 / self.t_ck_ps

    @property
    def data_rate_mtps(self) -> float:
        """Data rate in mega-transfers per second."""
        return 2 * self.freq_mhz

    def ps(self, cycles: float) -> int:
        """Convert a cycle count to picoseconds."""
        return int(round(cycles * self.t_ck_ps))

    def cycles_from_ps(self, duration_ps: int) -> int:
        """Convert picoseconds to a (ceiling) cycle count."""
        return int(math.ceil(duration_ps / self.t_ck_ps))

    def with_overrides(self, **kwargs) -> "DDR3Timing":
        """Return a copy with some fields replaced (used by ablation studies)."""
        return replace(self, **kwargs)


def _make_timing(
    name: str,
    t_ck_ns: float,
    cl: int,
    cwl: int,
    t_rcd_ns: float,
    t_rp_ns: float,
    t_rc_ns: float,
    t_ras_ns: float,
    t_wr_ns: float = 15.0,
    t_rrd_ns: float = 7.5,
    t_faw_ns: float = 40.0,
    t_rfc_ns: float = 110.0,
    t_refi_ns: float = 7800.0,
) -> DDR3Timing:
    return DDR3Timing(
        name=name,
        t_ck_ps=int(round(t_ck_ns * 1000)),
        cl=cl,
        cwl=cwl,
        al=0,
        bl=8,
        t_rcd=_cycles(t_rcd_ns, t_ck_ns),
        t_rp=_cycles(t_rp_ns, t_ck_ns),
        t_rc=_cycles(t_rc_ns, t_ck_ns),
        t_ras=_cycles(t_ras_ns, t_ck_ns),
        t_ccd=4,
        t_rtp=_cycles(7.5, t_ck_ns, minimum_ck=4),
        t_wtr=_cycles(7.5, t_ck_ns, minimum_ck=4),
        t_wr=_cycles(t_wr_ns, t_ck_ns),
        t_rrd=_cycles(t_rrd_ns, t_ck_ns, minimum_ck=4),
        t_faw=_cycles(t_faw_ns, t_ck_ns),
        t_rfc=_cycles(t_rfc_ns, t_ck_ns),
        t_refi=_cycles(t_refi_ns, t_ck_ns),
    )


DDR3_1066_187E = _make_timing(
    name="DDR3-1066 (-187E)",
    t_ck_ns=1.875,
    cl=7,
    cwl=6,
    t_rcd_ns=13.125,
    t_rp_ns=13.125,
    t_rc_ns=50.625,
    t_ras_ns=37.5,
)
"""Micron 1Gb DDR3-1066, the speed grade the paper's Figure 3 is computed from."""

DDR3_1333 = _make_timing(
    name="DDR3-1333 (-15E)",
    t_ck_ns=1.5,
    cl=9,
    cwl=7,
    t_rcd_ns=13.5,
    t_rp_ns=13.5,
    t_rc_ns=49.5,
    t_ras_ns=36.0,
)
"""Intermediate speed grade, used in sensitivity studies."""

DDR3_1600 = _make_timing(
    name="DDR3-1600 (-125)",
    t_ck_ns=1.25,
    cl=11,
    cwl=8,
    t_rcd_ns=13.75,
    t_rp_ns=13.75,
    t_rc_ns=48.75,
    t_ras_ns=35.0,
)
"""800 MHz memory I/O clock — the grade used by the paper's FPGA prototype."""


@dataclass(frozen=True)
class DDR3Geometry:
    """Geometry of one DDR3 memory set as seen by the Flow LUT.

    The paper's prototype attaches two separate 32-bit wide, 512-MByte DDR3
    SDRAM sets (one per lookup path).
    """

    banks: int = 8
    rows: int = 16384
    columns: int = 1024
    data_width_bits: int = 32
    burst_length: int = 8

    def __post_init__(self) -> None:
        for field_name in ("banks", "rows", "columns", "data_width_bits", "burst_length"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ValueError(f"{field_name} must be positive, got {value}")
            if value & (value - 1):
                raise ValueError(f"{field_name} must be a power of two, got {value}")

    @property
    def burst_bytes(self) -> int:
        """Bytes transferred by one full burst."""
        return self.data_width_bits // 8 * self.burst_length

    @property
    def row_bytes(self) -> int:
        """Bytes stored in one row of one bank."""
        return self.columns * self.data_width_bits // 8

    @property
    def capacity_bytes(self) -> int:
        """Total device capacity in bytes."""
        return self.banks * self.rows * self.row_bytes

    @property
    def capacity_mbytes(self) -> float:
        return self.capacity_bytes / (1 << 20)

    @property
    def bursts_per_row(self) -> int:
        return self.columns // self.burst_length


PROTOTYPE_GEOMETRY = DDR3Geometry(
    banks=8,
    rows=16384,
    columns=1024,
    data_width_bits=32,
    burst_length=8,
)
"""512 MB, 32-bit wide memory set matching the paper's prototype (Section IV-C)."""

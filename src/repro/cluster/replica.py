"""Passive flow-state replicas for k>=2 ring replication.

With replication enabled, every packet a primary node processes is also
accounted — functionally, off the timed path — on the backup node(s) of
its key's ring replica set.  The backup does not run the packet through
its own Flow LUT (that would double every hit/miss in the global books);
it keeps a :class:`ReplicaStore`: plain flow-record copies keyed by the
*engine* key bytes, mirroring exactly what the primary's flow-state table
accumulates.  On the primary's failure the coordinator promotes the
matching entries onto the keys' new owners, which is what makes failover
lossless for replicated flows.

Replica entries are copies, so several stores may hold *segments* of the
same flow after membership changes re-point the backup mid-life; each
packet updates exactly one store, so the segments partition the packet
stream and :meth:`~repro.core.flow_state.FlowRecord.absorb` reassembles
the full record at promotion time.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable, Dict, List, Tuple

from repro.core.flow_state import FlowRecord
from repro.telemetry.pipeline import EXACT_BYTES_PER_FLOW

REPLICA_BYTES_PER_FLOW = EXACT_BYTES_PER_FLOW
"""Provisioned bytes per replica entry (engine key + counters +
timestamps) — the exact-path per-flow budget, shared so the replication
memory overhead stays comparable against the primary tables."""


class ReplicaStore:
    """Backup copies of live flow records, keyed by engine key bytes.

    Replica records carry ``flow_id`` 0 — flow IDs are location-derived,
    so a promoted record receives whatever ID its new table placement
    yields (exactly like migration).
    """

    def __init__(self) -> None:
        self._records: Dict[bytes, FlowRecord] = {}
        self.updates = 0
        self.promoted = 0
        self.dropped = 0

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, key_bytes: bytes) -> bool:
        return key_bytes in self._records

    def observe_outcome(self, outcome) -> bool:
        """Mirror one primary lookup outcome into the backup copy.

        Only outcomes that produced a flow ID are mirrored — an outcome
        the primary could not place (table overflow) created no record
        there, and replicating it would let a failover "restore" a flow
        that never existed.  Returns whether the outcome was mirrored.
        """
        if outcome.flow_id is None:
            return False
        descriptor = outcome.descriptor
        key_bytes = descriptor.key_bytes
        timestamp = getattr(descriptor, "timestamp_ps", 0)
        record = self._records.get(key_bytes)
        if record is None:
            record = FlowRecord(
                flow_id=0,
                key=descriptor.key,
                first_seen_ps=timestamp,
                last_seen_ps=timestamp,
            )
            self._records[key_bytes] = record
        record.packets += 1
        record.bytes += getattr(descriptor, "length_bytes", 0)
        record.last_seen_ps = max(record.last_seen_ps, timestamp)
        record.tcp_flags |= getattr(descriptor, "tcp_flags", 0)
        self.updates += 1
        return True

    def seed(self, key_bytes: bytes, record: FlowRecord) -> None:
        """Install a copy of the primary's full ``record`` (plane resync).

        The caller's record keeps living in a flow-state table; the store
        keeps an independent copy so later replica updates never mutate
        live primary state.  A full record supersedes anything held for
        the key, so seeding overwrites — segments only ever meet at
        *promotion* time (``fail_node``), never here.
        """
        self._records[key_bytes] = replace(record, flow_id=0)

    def clear(self) -> int:
        """Forget every entry (the coordinator is resyncing the plane);
        the lifetime counters are kept.  Returns the entries dropped."""
        count = len(self._records)
        self._records.clear()
        return count

    def drop(self, key_bytes: bytes) -> bool:
        """Forget a flow (its primary expired or terminated it)."""
        if self._records.pop(key_bytes, None) is not None:
            self.dropped += 1
            return True
        return False

    def pop_matching(
        self, predicate: Callable[[bytes], bool]
    ) -> List[Tuple[bytes, FlowRecord]]:
        """Remove and return every ``(key_bytes, record)`` the predicate
        selects — the promotion path when those keys' primary failed."""
        taken = [(key, record) for key, record in self._records.items() if predicate(key)]
        for key, _ in taken:
            del self._records[key]
        self.promoted += len(taken)
        return taken

    @property
    def memory_bytes(self) -> int:
        """Provisioned replica storage (entries times the per-flow budget)."""
        return len(self._records) * REPLICA_BYTES_PER_FLOW

    def stats(self) -> dict:
        return {
            "entries": len(self._records),
            "updates": self.updates,
            "promoted": self.promoted,
            "dropped": self.dropped,
            "memory_bytes": self.memory_bytes,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ReplicaStore(entries={len(self._records)}, updates={self.updates})"

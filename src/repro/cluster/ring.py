"""Consistent-hash flow steering for the cluster layer.

A fleet of measurement nodes has the same problem the sharded engine solved
on one box — every packet of a flow must land on the same device — but with
one extra requirement: membership changes.  Nodes join, leave and fail, and
a plain ``hash % N`` would remap almost every flow each time ``N`` changes.

:class:`HashRing` is the classic consistent-hashing answer: every node owns
``vnodes`` pseudo-random points (*virtual nodes*) on a 32-bit ring, a flow
key hashes to a point, and the first vnode at or clockwise of that point
owns the flow.  Adding or removing one node therefore only remaps the keys
in the arcs that node's vnodes cover — about ``1/N`` of the keyspace —
which is exactly the flow state the cluster migrates.

The hash is the repository's IEEE CRC-32 (:data:`repro.hashing.crc.CRC32`)
— the same implementation :class:`~repro.engine.sharded.ShardedFlowLUT`
steers shards with, but over salted vnode labels rather than raw keys, and
a different family from the per-node H3 bucket hashing, so placement
decisions at the three levels stay uncorrelated.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Sequence, Tuple

from repro.columns import backend as col_backend
from repro.columns.hashing import crc32_column
from repro.hashing.crc import CRC32

RING_BITS = 32
RING_SIZE = 1 << RING_BITS

DEFAULT_VNODES = 64
"""Virtual nodes per physical node: enough that the largest arc share stays
within a few tens of percent of the mean, cheap enough to rebuild on joins."""


class HashRing:
    """A consistent-hash ring with virtual nodes over CRC-32 space.

    Parameters
    ----------
    vnodes: ring points per unit of node weight; more points mean a smoother
        key distribution at slightly larger membership-change cost.
    """

    def __init__(self, vnodes: int = DEFAULT_VNODES) -> None:
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        self.vnodes = vnodes
        self._weights: Dict[str, int] = {}
        # Sorted parallel arrays: token -> owning node.  Tokens can collide
        # (two vnodes hashing to the same point); the tie then breaks
        # lexicographically by node id — ``_rebuild`` sorts ``(token,
        # node_id)`` pairs, so among equal tokens the smallest node id sits
        # first and wins the ``bisect_left`` lookup.  ``set_weight``'s delta
        # rebuild inserts at exactly that position to preserve the rule.
        self._tokens: List[int] = []
        self._owners: List[str] = []
        self._np_tokens = None  # lazy numpy copy of _tokens for lookup_column

    # ------------------------------------------------------------------ #
    # Membership
    # ------------------------------------------------------------------ #

    def __len__(self) -> int:
        return len(self._weights)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._weights

    @property
    def node_ids(self) -> List[str]:
        """Member node IDs in insertion-independent (sorted) order."""
        return sorted(self._weights)

    @property
    def weights(self) -> Dict[str, int]:
        """Current per-node weights (a copy; mutate via :meth:`set_weight`)."""
        return dict(self._weights)

    def weight_of(self, node_id: str) -> int:
        """The weight of one member."""
        if node_id not in self._weights:
            raise KeyError(f"node {node_id!r} is not on the ring")
        return self._weights[node_id]

    def _node_tokens(self, node_id: str, weight: int) -> List[int]:
        return [
            CRC32.hash(f"{node_id}#{replica}".encode("utf-8"))
            for replica in range(self.vnodes * weight)
        ]

    def _rebuild(self) -> None:
        points: List[Tuple[int, str]] = []
        for node_id, weight in self._weights.items():
            points.extend((token, node_id) for token in self._node_tokens(node_id, weight))
        points.sort()
        self._tokens = [token for token, _ in points]
        self._owners = [node_id for _, node_id in points]
        self._np_tokens = None

    def add_node(self, node_id: str, weight: int = 1) -> None:
        """Add a member with ``vnodes * weight`` ring points."""
        if not node_id:
            raise ValueError("node_id must be non-empty")
        if node_id in self._weights:
            raise ValueError(f"node {node_id!r} is already on the ring")
        if weight <= 0:
            raise ValueError("weight must be positive")
        self._weights[node_id] = weight
        self._rebuild()

    def remove_node(self, node_id: str) -> None:
        """Remove a member; its arcs fall to the clockwise successors."""
        if node_id not in self._weights:
            raise KeyError(f"node {node_id!r} is not on the ring")
        del self._weights[node_id]
        self._rebuild()

    def set_weight(self, node_id: str, weight: int) -> None:
        """Change a member's weight: a delta rebuild of its vnode points.

        A node of weight ``w`` owns the ring points of replica labels
        ``0 .. vnodes*w - 1``, so changing the weight only adds or removes
        the points of the label range between the old and new weight —
        nothing else on the ring is re-hashed or moved.  Each added point is
        inserted at its sorted ``(token, node_id)`` position (the same
        lexicographic tie-break a full :meth:`_rebuild` produces, so the two
        paths yield identical rings), each removed point is deleted in
        place, and the numpy token cache used by :meth:`lookup_column` is
        invalidated.  The caller re-homes the flows whose arcs moved —
        that is the rebalance policy's targeted-migration step.
        """
        if node_id not in self._weights:
            raise KeyError(f"node {node_id!r} is not on the ring")
        if weight <= 0:
            raise ValueError("weight must be positive")
        old = self._weights[node_id]
        if weight == old:
            return
        self._weights[node_id] = weight
        low, high = sorted((old, weight))
        # Slice the canonical derivation so the delta path can never drift
        # from what a full _rebuild would hash for the same labels.
        delta = self._node_tokens(node_id, high)[self.vnodes * low :]
        if weight > old:
            for token in delta:
                index = self._point_insertion_index(token, node_id)
                self._tokens.insert(index, token)
                self._owners.insert(index, node_id)
        else:
            for token in delta:
                del_index = self._point_index(token, node_id)
                del self._tokens[del_index]
                del self._owners[del_index]
        self._np_tokens = None

    def _point_insertion_index(self, token: int, node_id: str) -> int:
        """Sorted position of ``(token, node_id)`` among the ring points."""
        index = bisect.bisect_left(self._tokens, token)
        end = bisect.bisect_right(self._tokens, token, index)
        while index < end and self._owners[index] < node_id:
            index += 1
        return index

    def _point_index(self, token: int, node_id: str) -> int:
        """Position of an existing ``(token, node_id)`` ring point."""
        index = bisect.bisect_left(self._tokens, token)
        while index < len(self._tokens) and self._tokens[index] == token:
            if self._owners[index] == node_id:
                return index
            index += 1
        raise KeyError(f"ring point ({token}, {node_id!r}) is not present")

    # ------------------------------------------------------------------ #
    # Steering
    # ------------------------------------------------------------------ #

    def key_token(self, key_bytes: bytes) -> int:
        """The ring position of a flow key."""
        return CRC32.hash(key_bytes)

    def lookup(self, key_bytes: bytes) -> str:
        """The node owning ``key_bytes``: first vnode clockwise of its token."""
        if not self._tokens:
            raise LookupError("cannot look up a key on an empty ring")
        index = bisect.bisect_left(self._tokens, self.key_token(key_bytes))
        if index == len(self._tokens):  # wrap past the top of the ring
            index = 0
        return self._owners[index]

    def lookup_column(self, key_data, count: int, width: int) -> List[str]:
        """Owners of every fixed-width key in a packed column.

        The vectorised twin of :meth:`lookup`: the whole column is CRC-32
        hashed in one pass (:func:`repro.columns.hashing.crc32_column`) and
        steered with a single ``searchsorted`` over the token array.  The
        returned owner list equals ``[self.lookup(k) for k in keys]``.
        """
        if not self._tokens:
            raise LookupError("cannot look up a key on an empty ring")
        np = col_backend.np
        tokens = crc32_column(key_data, count, width)
        owners = self._owners
        if np is not None:
            if self._np_tokens is None:
                self._np_tokens = np.asarray(self._tokens, dtype=np.int64)
            indices = np.searchsorted(self._np_tokens, tokens.astype(np.int64), side="left")
            indices[indices == len(owners)] = 0  # wrap past the top of the ring
            return [owners[i] for i in indices]
        ring_tokens = self._tokens
        size = len(ring_tokens)
        result = []
        for token in tokens:
            index = bisect.bisect_left(ring_tokens, token)
            result.append(owners[0 if index == size else index])
        return result

    def lookup_n(self, key_bytes: bytes, count: int = 2) -> List[str]:
        """The key's replica set: the first ``count`` *distinct* nodes clockwise.

        The classic consistent-hashing replica placement — the primary is
        the arc owner (``lookup``), the backup the next distinct node
        clockwise, and so on.  Walking vnodes of the same physical node is
        skipped, so replicas always land on different machines.  With
        fewer than ``count`` members the whole membership is returned (a
        one-node ring simply has no backup to offer).
        """
        if count <= 0:
            raise ValueError("count must be positive")
        if not self._tokens:
            raise LookupError("cannot look up a key on an empty ring")
        start = bisect.bisect_left(self._tokens, self.key_token(key_bytes))
        owners: List[str] = []
        limit = min(count, len(self._weights))
        for step in range(len(self._tokens)):
            owner = self._owners[(start + step) % len(self._tokens)]
            if owner not in owners:
                owners.append(owner)
                if len(owners) == limit:
                    break
        return owners

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def arc_shares(self) -> Dict[str, float]:
        """Fraction of the ring each node owns (sums to 1.0).

        This is the *expected* share of a uniformly hashing keyspace; the
        coordinator compares it against observed per-node load to separate
        ring unevenness from genuinely skewed traffic.
        """
        if not self._tokens:
            return {}
        shares: Dict[str, float] = {node_id: 0.0 for node_id in self._weights}
        previous = self._tokens[-1] - RING_SIZE  # the wrap-around arc
        for token, owner in zip(self._tokens, self._owners):
            shares[owner] += (token - previous) / RING_SIZE
            previous = token
        return shares

    def spread(self, keys: Sequence[bytes]) -> Dict[str, int]:
        """How many of ``keys`` each node would own (all nodes listed).

        An empty ring owns nothing and returns ``{}`` — a defined result,
        rather than letting :meth:`lookup` raise mid-iteration.
        """
        if not self._tokens:
            return {}
        counts = {node_id: 0 for node_id in self._weights}
        for key in keys:
            counts[self.lookup(key)] += 1
        return counts

    def stats(self) -> dict:
        shares = self.arc_shares()
        return {
            "nodes": len(self._weights),
            "vnodes_per_weight": self.vnodes,
            "ring_points": len(self._tokens),
            "max_arc_share": max(shares.values()) if shares else 0.0,
            "min_arc_share": min(shares.values()) if shares else 0.0,
            "weights": dict(self._weights),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HashRing(nodes={self.node_ids}, vnodes={self.vnodes})"

"""Cluster-wide orchestration: steering, membership, global accounting.

:class:`ClusterCoordinator` is the control plane of the simulated fleet.  It
owns a :class:`~repro.cluster.ring.HashRing` and a set of
:class:`~repro.cluster.node.ClusterNode`\\ s, steers descriptor batches to
the nodes that own their flow keys, and keeps the books that make the
simulation honest:

* **Global accounting** — hit / miss / new-flow / throughput totals summed
  over alive nodes, with departed and failed nodes' contributions retained
  separately so ``cluster_totals()`` always balances against what was
  ingested, even across membership changes.
* **Membership** — :meth:`add_node` (join with live-flow migration onto the
  new owner), :meth:`remove_node` (graceful leave, flows re-homed), and
  :meth:`fail_node` (crash: live flow state and telemetry sketches are
  lost, and the loss is counted, not papered over).
* **Load imbalance** — observed per-node load versus the ring's expected
  arc share (:meth:`imbalance_report`), separating consistent-hashing
  unevenness from genuinely skewed traffic such as the ``hotspot_shift``
  scenario.
* **Mergeable telemetry** — :meth:`merged_telemetry` folds the per-node
  sketch pipelines into one cluster-wide measurement plane (exact for
  Count-Min and bitmap unions, bounded-error for Space-Saving), which is
  what an operator would query for fleet-level heavy hitters and
  superspreaders.

Because flows are pinned to nodes by ring hash — like shards inside one
node — the cluster's aggregate hit/miss/new-flow totals on a static
membership equal a single LUT serving the whole stream.
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.columns.block import DescriptorBlock
from repro.core.config import FlowLUTConfig, small_test_config
from repro.core.flow_lut import LookupOutcome
from repro.core.flow_state import FlowRecord
from repro.cluster.node import ClusterNode
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.obs.alerts import default_cluster_rules
from repro.obs.export import registry_snapshot, to_prometheus_text
from repro.obs.plane import Observability
from repro.parallel import ExecutorSpec, NodeWork, resolve_executor
from repro.persist import (
    NodeSnapshot,
    dump_node_snapshot,
    dumps,
    load_node_snapshot,
    loads,
)
from repro.sim.rng import SeedLike
from repro.telemetry.pipeline import TelemetryConfig, TelemetryPipeline

DEFAULT_BATCH_SIZE = 512


class ClusterCoordinator:
    """Batched ingestion across a ring-steered fleet of measurement nodes.

    Parameters
    ----------
    nodes: initial membership — a count (IDs ``node0..nodeN-1``) or explicit
        node IDs.
    config: per-shard Flow LUT configuration shared by every node; defaults
        to the small test prototype (like the scenario runner).
    shards_per_node: Flow LUT devices inside each node.
    vnodes: virtual nodes per ring member.
    telemetry: give every node a telemetry pipeline; all pipelines share
        ``telemetry_config`` / ``telemetry_seed`` so they merge.
    flow_timeout_us: housekeeping timeout for per-node flow state.
    batch_size: default sub-batch size for :meth:`ingest`.
    replication: size of each key's ring replica set — 1 (no replication)
        or 2.  With ``k = 2`` every processed outcome is mirrored —
        functionally, off the timed path — onto the key's backup node
        (:class:`~repro.cluster.replica.ReplicaStore` flow copies plus
        per-primary backup telemetry pipelines), and :meth:`fail_node`
        promotes the backups so failover is lossless for replicated keys.
        Exact recovery rests on each packet updating exactly *one* backup
        (copies partition the stream in time and re-merge by addition);
        ``k > 2`` would hand every backup a full copy and double-count on
        promotion, so it is rejected.
    checkpoint_interval: packets between automatic per-node checkpoints
        (``None`` disables the trigger).  A node is re-checkpointed as soon
        as it has completed at least this many descriptors since its last
        checkpoint, so at any point between :meth:`ingest` calls the
        un-checkpointed delta is below the interval — which bounds what a
        failure can cost: ``telemetry_packets_lost <= checkpoint_interval``
        per failure, and ``flows_lost`` shrinks to the flows the checkpoint
        missed.  :meth:`checkpoint_all` is the window-close trigger for
        callers that checkpoint at measurement-window boundaries instead.
    checkpoint_dir: persist checkpoints to disk files (``<node_id>.ckpt``,
        one :mod:`repro.persist` frame each) as well as memory.  Files
        matching *current members* are loaded at construction, so a fresh
        coordinator warm-starts from a previous incarnation's checkpoints:
        :meth:`fail_node` replays them exactly like in-memory ones, and
        :meth:`add_node` accepts a checkpoint file path as its
        ``snapshot``.  Files are consumed and retired together with their
        in-memory copies; files for node IDs outside the membership are
        left on disk untouched (import them explicitly via
        ``add_node(snapshot=<path>)``).
    obs: the unified observability plane — ``True`` builds a fresh
        :class:`~repro.obs.plane.Observability`, or pass one to share a
        registry/journal across coordinators.  When enabled, every node's
        engine writes per-batch stage timings and per-shard counters into
        the shared registry (labeled ``node=...``), checkpoint encode/
        decode cost lands under ``repro_persist_*``, membership and
        recovery actions are journaled with monotonic sequence numbers,
        and :meth:`metrics_snapshot` / :meth:`prometheus_text` export the
        fleet view.  The default (``False``/``None``) keeps the whole
        plane off the hot path.

        A plane built with ``window_ps=`` additionally gets its windowed
        registry advanced once per :meth:`ingest` segment (with the last
        descriptor's simulated timestamp — the coordinator, not the
        node-major engine batches, owns the time-ordered watermark) and
        flushed by :meth:`finalize_telemetry`; one built with spans gets
        ``ingest_batch -> steer -> node`` control-plane spans wrapping the
        engines' batch traces; one built with ``alerts=True`` has the
        shipped cluster watchdogs (:func:`~repro.obs.alerts.
        default_cluster_rules`) installed, with the imbalance rule wired
        to :meth:`imbalance_report` for point-of-onset diagnosis.
    executor: how per-node work of an :meth:`ingest` segment runs — an
        :class:`~repro.parallel.IngestExecutor`, a spec string
        (``"thread"``, ``"thread:8"``, ``"process:2"``, ``"off"``), or an
        int (thread workers).  ``None`` reads ``REPRO_PARALLEL`` and
        defaults to the sequential reference.  Every executor produces
        bit-identical books, merged top-k and obs streams: the segment is
        steered on the caller thread, node work runs on the pool, and all
        order-sensitive effects (replication, checkpoint triggers, window
        advance, span grafting) are applied at a per-segment barrier in
        stable node order — see :mod:`repro.parallel`.  With the process
        executor, nodes are built *without* the shared obs plane (they
        cross a process boundary by pickle; a registry cannot), and the
        coordinator re-credits each node's hit/miss/new-flow outcome
        counters from its accounting at the barrier so windowed outcome
        totals still match; per-stage timings, span traces and per-shard
        counters are a thread/sequential-mode feature.  Call
        :meth:`close` (or reuse one shared executor) when done with a
        pool-backed coordinator.
    """

    def __init__(
        self,
        nodes: Union[int, Sequence[str]] = 4,
        config: Optional[FlowLUTConfig] = None,
        shards_per_node: int = 1,
        vnodes: int = DEFAULT_VNODES,
        telemetry: bool = True,
        telemetry_config: Optional[TelemetryConfig] = None,
        telemetry_seed: SeedLike = 0,
        flow_timeout_us: Optional[float] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
        replication: int = 1,
        checkpoint_interval: Optional[int] = None,
        checkpoint_dir: Optional[Union[str, Path]] = None,
        obs: Union[None, bool, Observability] = None,
        executor: ExecutorSpec = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if replication not in (1, 2):
            raise ValueError(
                "replication must be 1 (off) or 2: promotion re-merges backup "
                "copies by addition, which is only exact when each packet "
                "updates exactly one backup"
            )
        if checkpoint_interval is not None and checkpoint_interval <= 0:
            raise ValueError("checkpoint_interval must be positive (or None)")
        if isinstance(nodes, int):
            if nodes <= 0:
                raise ValueError("node count must be positive")
            node_ids: List[str] = [f"node{index}" for index in range(nodes)]
        else:
            node_ids = list(nodes)
            if not node_ids:
                raise ValueError("at least one node is required")
            if len(set(node_ids)) != len(node_ids):
                raise ValueError("node IDs must be unique")
        self.config = config or small_test_config()
        self.shards_per_node = shards_per_node
        self.telemetry_enabled = telemetry
        self.telemetry_config = telemetry_config
        self.telemetry_seed = telemetry_seed
        self.flow_timeout_us = flow_timeout_us
        self.batch_size = batch_size
        self.obs = Observability.coerce(obs)
        self.executor = resolve_executor(executor)
        # Process-mode outcome reconciliation: last hit/miss/new-flow
        # totals credited per node (see _credit_outcomes).
        self._outcome_marks: Dict[str, Tuple[int, int, int]] = {}
        # Host-side parallel ingestion accounting (see parallel_report).
        self._segments = 0
        self._steer_ns = 0
        self._busy_ns = 0
        self._critical_ns = 0
        self._wall_ns = 0
        self._node_busy_ns: Dict[str, int] = {}

        self.ring = HashRing(vnodes=vnodes)
        self.nodes: Dict[str, ClusterNode] = {}
        for node_id in node_ids:
            self.ring.add_node(node_id)
            self.nodes[node_id] = self._make_node(node_id)

        self.replication = replication
        self.checkpoint_interval = checkpoint_interval

        if self.obs is not None:
            metrics = self.obs.metrics
            self._obs_ingested = metrics.counter(
                "repro_cluster_ingested_total", "Descriptors steered into the fleet"
            ).labels()
            self._obs_flows_lost = metrics.counter(
                "repro_cluster_flows_lost_total",
                "Flow records lost to node failures or unplaceable migrations",
            ).labels()
            self._obs_replicated = metrics.counter(
                "repro_cluster_replicated_packets_total",
                "Outcome copies mirrored onto backup nodes",
            ).labels()
            alerts = self.obs.alerts
            if alerts is not None:
                if alerts.auto_defaults and not alerts.rules:
                    alerts.add_rules(default_cluster_rules(replication=replication))
                # The imbalance watchdog's onset event carries a per-node
                # diagnosis taken at that window — windowed when a windowed
                # registry exists, lifetime otherwise (_imbalance_context).
                alerts.set_context("node_imbalance", self._imbalance_context)

        self.ingested = 0
        self.flows_migrated = 0
        self.flows_lost = 0
        self.flows_restored = 0
        self.telemetry_packets_lost = 0
        self.replicated_packets = 0
        self.checkpoints_taken = 0
        self.joins = 0
        self.leaves = 0
        self.failures = 0
        # Latest binary checkpoint per node (repro.persist frames) and the
        # completed-count watermark the packet-count trigger compares against.
        self.checkpoints: Dict[str, bytes] = {}
        self._checkpoint_meta: Dict[str, dict] = {}
        self._checkpointed_at: Dict[str, int] = {}
        self.checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir is not None else None
        if self.checkpoint_dir is not None:
            self.checkpoint_dir.mkdir(parents=True, exist_ok=True)
            for file in sorted(self.checkpoint_dir.glob("*.ckpt")):
                if file.stem not in self.nodes:
                    # A checkpoint for a node this membership does not have
                    # (a previous incarnation's layout): leave it on disk —
                    # replaying it automatically could resurrect state this
                    # cluster never lost.  The operator imports it
                    # explicitly via ``add_node(snapshot=<path>)``.
                    continue
                data = file.read_bytes()
                try:
                    snapshot = load_node_snapshot(
                        data, obs=self.obs.metrics if self.obs is not None else None
                    )
                except Exception as error:
                    raise ValueError(
                        f"checkpoint file {file} is not a readable node "
                        f"snapshot: {error}"
                    ) from error
                if snapshot.node_id != file.stem:
                    raise ValueError(
                        f"checkpoint file {file} holds a snapshot of node "
                        f"{snapshot.node_id!r}, not {file.stem!r}; to import "
                        "another node's state use add_node(snapshot=<path>)"
                    )
                self.checkpoints[file.stem] = data
                if self.obs is not None:
                    self.obs.record(
                        "checkpoint_load",
                        node=file.stem,
                        source="disk",
                        size_bytes=len(data),
                    )
        # Steering overrides: flow key -> node id, consulted before the ring.
        # The rebalance policy pins individual hot flows onto explicit
        # owners (weight changes move whole arcs; a handful of elephant
        # flows needs per-key placement).  Empty unless a policy (or an
        # operator via pin_flows) installed pins, so the unpinned hot path
        # costs one truthiness check.
        self._pins: Dict[bytes, str] = {}
        # Export records handed over by graceful leavers, awaiting the next
        # cluster-wide drain (a failed node's undrained exports die with it).
        self._pending_exports: List[FlowRecord] = []
        self.exports_drained = 0
        self.routed: Dict[str, int] = {node_id: 0 for node_id in node_ids}
        # Departed/failed nodes' final accounting, so the cluster-wide books
        # keep balancing after membership changes.
        self._retired_reports: List[dict] = []
        self._retired_pipelines: List[TelemetryPipeline] = []
        self.events: List[dict] = []

    def _make_node(self, node_id: str) -> ClusterNode:
        # A node that ships across a process boundary cannot carry the
        # shared obs plane (registries, journals and recorders are
        # process-local); its outcome counters are re-credited from node
        # accounting at the ingest barrier instead (_credit_outcomes).
        self._outcome_marks[node_id] = (0, 0, 0)
        return ClusterNode(
            node_id,
            config=self.config,
            shards=self.shards_per_node,
            telemetry=self.telemetry_enabled,
            telemetry_config=self.telemetry_config,
            telemetry_seed=self.telemetry_seed,
            flow_timeout_us=self.flow_timeout_us,
            obs=None if self.executor.ships_state else self.obs,
        )

    # ------------------------------------------------------------------ #
    # Steering and ingestion
    # ------------------------------------------------------------------ #

    def owner_of(self, key_bytes: bytes) -> str:
        """The node currently owning a flow key: its pin, else the ring."""
        if self._pins:
            pinned = self._pins.get(key_bytes)
            if pinned is not None:
                return pinned
        return self.ring.lookup(key_bytes)

    def backups_of(self, key_bytes: bytes) -> List[str]:
        """The key's backup replica set under the current placement.

        Without pins this is the classic ring walk
        (:meth:`HashRing.lookup_n` minus the primary).  A pinned key's
        primary is its pin target, so the backups become the first distinct
        ring-walk nodes that are *not* that target — replicas must still
        land on different machines than the primary, wherever the primary
        was pinned.  Empty with replication off or a one-node ring.
        """
        if self.replication <= 1 or len(self.ring) < 2:
            return []
        pinned = self._pins.get(key_bytes) if self._pins else None
        if pinned is None:
            return self.ring.lookup_n(key_bytes, self.replication)[1:]
        walk = self.ring.lookup_n(key_bytes, self.replication + 1)
        return [node_id for node_id in walk if node_id != pinned][: self.replication - 1]

    def route(self, descriptors: Sequence) -> Dict[str, List]:
        """Partition a descriptor batch by owner (order kept per node).

        Owners are materialised lazily — only nodes that actually receive a
        descriptor get a list — so a small segment costs O(batch), not
        O(fleet): the eager ``{node: [] for node in fleet}`` build dominated
        small-segment workloads on large fleets.  The mapping's iteration
        order is therefore first-appearance; order-sensitive callers
        (:meth:`ingest`) iterate membership order and index into it.  Pin
        overrides are honoured; the unpinned case keeps the bare-ring loop.
        """
        groups: Dict[str, List] = {}
        lookup = self.ring.lookup
        pins = self._pins
        for descriptor in descriptors:
            key_bytes = descriptor.key_bytes
            if pins:
                owner = pins.get(key_bytes)
                if owner is None:
                    owner = lookup(key_bytes)
            else:
                owner = lookup(key_bytes)
            bucket = groups.get(owner)
            if bucket is None:
                bucket = groups[owner] = []
            bucket.append(descriptor)
        return groups

    def _steer_works(self, descriptors, columnar: bool, size: int, trace: bool) -> List[NodeWork]:
        """Partition one segment into per-node :class:`NodeWork` units.

        Object batches are routed per descriptor (:meth:`route`); blocks
        with one vectorised ring pass
        (:meth:`~repro.cluster.ring.HashRing.lookup_column`) and a
        per-owner row gather.  Either way the works come out in membership
        order — the order the sequential loop visits nodes — which is what
        makes the barrier's replication/checkpoint/span ordering (and so
        every downstream stream) executor-independent.  A single-member
        fleet skips hashing entirely: every key belongs to the one node.
        """
        collect = self.replication > 1
        spans = self.obs.spans if self.obs is not None else None
        span_clock = spans.clock if (trace and spans is not None) else None
        trace = trace and not self.executor.ships_state
        works: List[NodeWork] = []

        def work_for(node_id: str, group, packets: int) -> NodeWork:
            return NodeWork(
                node_id=node_id,
                node=self.nodes[node_id],
                group=group,
                batch_size=size,
                packets=packets,
                collect_outcomes=collect,
                trace=trace,
                span_clock=span_clock,
            )

        count = len(descriptors)
        if len(self.nodes) == 1:
            (node_id,) = self.nodes
            if count:
                works.append(work_for(node_id, descriptors, count))
        elif columnar:
            owners = self.ring.lookup_column(
                descriptors.key_data, count, descriptors.key_width
            )
            if self._pins:
                # Pin overrides ride on top of the vectorised ring pass:
                # only the pinned rows are patched, so the common all-ring
                # block keeps the single-searchsorted fast path.
                pins = self._pins
                for row, key_bytes in enumerate(descriptors.keys()):
                    pinned = pins.get(key_bytes)
                    if pinned is not None:
                        owners[row] = pinned
            rows: Dict[str, List[int]] = {}
            for row, owner in enumerate(owners):
                bucket = rows.get(owner)
                if bucket is None:
                    bucket = rows[owner] = []
                bucket.append(row)
            for node_id in self.nodes:
                indices = rows.get(node_id)
                if indices:
                    works.append(
                        work_for(node_id, descriptors.take(indices), len(indices))
                    )
        else:
            groups = self.route(descriptors)
            for node_id in self.nodes:
                group = groups.get(node_id)
                if group:
                    works.append(work_for(node_id, group, len(group)))
        return works

    def ingest(self, descriptors, batch_size: Optional[int] = None) -> dict:
        """Steer one stream segment across the fleet in per-node batches.

        Every descriptor is routed to exactly one alive node and processed
        there in sub-batches of ``batch_size``; nodes are independent
        devices, so the wall-clock cost of a segment is the slowest node's
        simulated time.  Accepts either a descriptor sequence (timed
        reference path) or a :class:`~repro.columns.DescriptorBlock` —
        blocks are steered with one vectorised ring pass and each node
        bulk-probes its slice.  Returns the per-node packet counts of this
        call.

        The segment is a steer → fan-out → barrier pipeline: steering runs
        on the caller thread, the per-node works run on :attr:`executor`
        (concurrently, on the pooled executors), and every order-sensitive
        effect — replication mirroring, checkpoint triggers, span grafting,
        outcome-counter reconciliation, the windowed-clock ``advance`` —
        happens after the barrier in membership order, so results and obs
        streams are identical whichever executor ran the segment.
        """
        size = self.batch_size if batch_size is None else batch_size
        if size <= 0:
            raise ValueError("batch_size must be positive")
        columnar = isinstance(descriptors, DescriptorBlock)
        count = len(descriptors)
        spans = self.obs.spans if self.obs is not None else None
        per_node: Dict[str, int] = {}
        t_start = time.perf_counter_ns()
        root_attrs = {"packets": count}
        if columnar:
            root_attrs["columnar"] = True
        with (
            spans.root("ingest_batch", **root_attrs)
            if spans is not None
            else nullcontext()
        ):
            # Inside the root: sampled away means current_id is None and
            # the segment traces nothing, exactly like the old suppressed
            # subtree (engines' recorders are parked for the duration).
            parent_id = spans.current_id if spans is not None else None
            with spans.span("steer") if spans is not None else nullcontext():
                works = self._steer_works(
                    descriptors, columnar, size, trace=parent_id is not None
                )
            t_steered = time.perf_counter_ns()
            results = self.executor.run(works)
            # Barrier, pass 1 — adopt worker state.  A process executor
            # returns round-tripped node copies; they must all be resident
            # before any replication below mirrors outcomes onto backups.
            max_busy_ns = 0
            for result in results:
                if result.node is not self.nodes[result.node_id]:
                    self.nodes[result.node_id] = result.node
                if result.recorder is not None and spans is not None:
                    spans.graft(result.recorder, parent_id)
                busy = self._node_busy_ns.get(result.node_id, 0)
                self._node_busy_ns[result.node_id] = busy + result.busy_ns
                if result.busy_ns > max_busy_ns:
                    max_busy_ns = result.busy_ns
            # Barrier, pass 2 — order-sensitive effects, membership order.
            for work, result in zip(works, results):
                node_id = result.node_id
                if result.outcomes is not None:
                    for outcomes in result.outcomes:
                        self._replicate(node_id, outcomes)
                if self.executor.ships_state and self.obs is not None:
                    self._credit_outcomes(node_id)
                if (
                    self.checkpoint_interval is not None
                    and self.nodes[node_id].completed
                    - self._checkpointed_at.get(node_id, 0)
                    >= self.checkpoint_interval
                ):
                    self.checkpoint_node(node_id)
                per_node[node_id] = work.packets
                self.routed[node_id] = self.routed.get(node_id, 0) + work.packets
        t_end = time.perf_counter_ns()
        self._segments += 1
        self._steer_ns += t_steered - t_start
        # The modeled fleet-parallel cost of the segment: the serial parts
        # (steer, dispatch, barrier — wall minus the workers' busy time,
        # clamped at 0 for hosts that genuinely overlapped the workers)
        # plus the slowest worker.  On a single-core host the measured
        # wall degenerates to the busy sum; this figure is what node-count
        # scaling is judged against.
        busy_ns = sum(result.busy_ns for result in results)
        self._busy_ns += busy_ns
        self._critical_ns += max((t_end - t_start) - busy_ns, 0) + max_busy_ns
        self._wall_ns += t_end - t_start
        self.ingested += count
        if self.obs is not None:
            self._obs_ingested.inc(count)
            # The windowed clock advances once per segment: ingestion is
            # node-major inside this call, so only the segment boundary is
            # a safe time-ordered watermark (callers feed monotone streams).
            if self.obs.windows is not None and count:
                last_ts = (
                    int(descriptors.timestamps[count - 1])
                    if columnar
                    else descriptors[-1].timestamp_ps
                )
                self.obs.windows.advance(last_ts)
        return {"packets": count, "per_node": per_node}

    def _credit_outcomes(self, node_id: str) -> None:
        """Re-credit one node's outcome counters from its accounting.

        Process-mode nodes run without the shared registry (it cannot cross
        the pickle boundary), so the ``repro_engine_outcomes_total`` series
        the windowed registry and watchdog rules read would stay flat.  The
        barrier closes that gap from the node accounting that *does* round-
        trip: hit/miss/new-flow deltas since the last credit, labelled like
        the engine would have.  Stage timings, per-shard counters and span
        traces remain thread/sequential-mode features.
        """
        node = self.nodes[node_id]
        hits, misses, flows = node.hits, node.misses, node.new_flows
        prev_hits, prev_misses, prev_flows = self._outcome_marks.get(node_id, (0, 0, 0))
        if (hits, misses, flows) == (prev_hits, prev_misses, prev_flows):
            return
        counter = self.obs.metrics.counter(
            "repro_engine_outcomes_total",
            "Lookup outcomes by result (hit/miss/new_flow)",
            labels=("node", "result"),
        )
        if hits != prev_hits:
            counter.inc(hits - prev_hits, node=node_id, result="hit")
        if misses != prev_misses:
            counter.inc(misses - prev_misses, node=node_id, result="miss")
        if flows != prev_flows:
            counter.inc(flows - prev_flows, node=node_id, result="new_flow")
        self._outcome_marks[node_id] = (hits, misses, flows)

    def parallel_report(self) -> dict:
        """Host-side ingestion cost accounting for the configured executor.

        ``critical_path_ns`` models each segment as serial steering + the
        slowest node's measured busy time + the serial barrier tail — the
        wall-clock a fleet-parallel host achieves; ``wall_ns`` is the raw
        measured wall (on a single-core host it degenerates to the busy
        sum).  ``aggregate_mdesc_s`` is ingested descriptors over the
        critical path — the figure ``BENCH_parallel.json`` tracks against
        node count.
        """
        def mdesc_s(ns: int) -> float:
            return self.ingested * 1e3 / ns if ns > 0 else 0.0

        return {
            "mode": self.executor.kind,
            "workers": self.executor.workers,
            "segments": self._segments,
            "ingested": self.ingested,
            "steer_ns": self._steer_ns,
            "busy_ns": self._busy_ns,
            "critical_path_ns": self._critical_ns,
            "wall_ns": self._wall_ns,
            "per_node_busy_ns": dict(sorted(self._node_busy_ns.items())),
            "aggregate_mdesc_s": mdesc_s(self._critical_ns),
            "wall_mdesc_s": mdesc_s(self._wall_ns),
        }

    def close(self) -> None:
        """Release the executor's pool (safe to call repeatedly)."""
        self.executor.close()

    def _replicate(self, primary_id: str, outcomes: Sequence[LookupOutcome]) -> None:
        """Mirror a primary's outcome batch onto its keys' backup nodes.

        The replica set is memoised per *batch* only: flows repeat heavily
        within a batch (that is what flow tables exploit), so the memo
        captures most repeated ring walks, while its size stays bounded by
        the batch instead of growing one entry per distinct flow key for
        the life of a membership.
        """
        if len(self.ring) < 2:
            return  # a one-node ring has nowhere to put a backup
        backups: Dict[bytes, List[str]] = {}
        groups: Dict[str, List[LookupOutcome]] = {}
        for outcome in outcomes:
            key_bytes = outcome.descriptor.key_bytes
            backup_ids = backups.get(key_bytes)
            if backup_ids is None:
                backup_ids = self.backups_of(key_bytes)
                backups[key_bytes] = backup_ids
            for backup_id in backup_ids:
                groups.setdefault(backup_id, []).append(outcome)
        for backup_id, group in groups.items():
            self.nodes[backup_id].replicate(primary_id, group)
            self.replicated_packets += len(group)
            if self.obs is not None:
                self._obs_replicated.inc(len(group))

    def run_housekeeping(self, now_ps: Optional[int] = None) -> int:
        """One flow-aging pass across every alive node; returns removals.

        With replication on, the expired flows' replica copies are purged
        from every backup store in the same pass — an expired flow has
        ended, and a later failover must not resurrect it — and the expiry
        *sizing* the primary just recorded in its flow-size histogram is
        mirrored into the key's backup pipeline, so a later promotion
        reconstructs the dead primary's histogram too, not only its
        streaming sketches.
        """
        if self.replication <= 1:
            return sum(node.run_housekeeping(now_ps) for node in self.nodes.values())
        removed = 0
        for node in list(self.nodes.values()):
            expired: List[Tuple[bytes, FlowRecord]] = []
            removed += node.run_housekeeping(now_ps, expired)
            if len(self.ring) < 2:
                continue  # running alone: no backups to purge or mirror into
            for key_bytes, record in expired:
                # After a resync exactly the key's current backup holds a
                # copy, so only the replica set needs touching.
                for backup_id in self.backups_of(key_bytes):
                    backup = self.nodes[backup_id]
                    backup.replica_flows.drop(key_bytes)
                    if self.telemetry_enabled:
                        backup.backup_pipeline(node.node_id).flow_sizes.observe_flow(
                            record.packets, record.bytes
                        )
        return removed

    def finalize_telemetry(self) -> int:
        """Close the measurement window on every alive node.

        Sizes the flows still live into each node's flow-size distribution
        (expired flows were sized by :meth:`run_housekeeping`), so a
        subsequent :meth:`merged_telemetry` carries the fleet-wide
        flow-size histogram, not just the streaming sketches.  Call once
        per window, before merging.

        With replication on, the window-close sizings are mirrored into
        the backup pipelines exactly like the expiry sizings in
        :meth:`run_housekeeping` — otherwise a failure after the window
        close would lose the victim's histogram contributions while still
        reporting the recovery lossless.
        """
        if self.replication <= 1 or not self.telemetry_enabled or len(self.ring) < 2:
            added = sum(node.finalize_telemetry() for node in self.nodes.values())
        else:
            added = 0
            for node in list(self.nodes.values()):
                # Capture the sized set first; finalize does not mutate it.
                pairs = node.engine.live_flow_pairs()
                added += node.finalize_telemetry()
                for key_bytes, record in pairs:
                    if record is None:
                        continue  # bare preloaded entries are not sized either
                    for backup_id in self.backups_of(key_bytes):
                        self.nodes[backup_id].backup_pipeline(
                            node.node_id
                        ).flow_sizes.observe_flow(record.packets, record.bytes)
        # Closing the measurement window also closes the partial metrics
        # window, so the tail of the stream is observable (and alertable).
        if self.obs is not None and self.obs.windows is not None:
            self.obs.windows.flush()
        return added

    # ------------------------------------------------------------------ #
    # Checkpointing (repro.persist)
    # ------------------------------------------------------------------ #

    def checkpoint_node(self, node_id: str) -> dict:
        """Write a durable binary checkpoint of one node; returns its metadata.

        The checkpoint (a :mod:`repro.persist` node frame: live flows plus
        the telemetry pipeline) replaces the node's previous one — recovery
        always replays the latest — and resets the packet-count trigger.
        """
        node = self.nodes.get(node_id)
        if node is None:
            raise KeyError(f"node {node_id!r} is not a member")
        data = dump_node_snapshot(
            node, obs=self.obs.metrics if self.obs is not None else None
        )
        self.checkpoints[node_id] = data
        if self.checkpoint_dir is not None:
            # Write-then-rename so a crash mid-write never leaves a torn
            # frame where the next incarnation expects a checkpoint.
            target = self.checkpoint_dir / f"{node_id}.ckpt"
            scratch = target.with_name(target.name + ".tmp")
            scratch.write_bytes(data)
            os.replace(scratch, target)
        self._checkpointed_at[node_id] = node.completed
        self.checkpoints_taken += 1
        meta = {
            "node": node_id,
            "completed": node.completed,
            "flows": node.active_flows,
            # Telemetry packets covered; 0 without a pipeline, matching
            # NodeSnapshot.packets for the same frame.
            "packets": node.pipeline.packets if node.pipeline is not None else 0,
            "size_bytes": len(data),
        }
        if self.checkpoint_dir is not None:
            meta["path"] = str(self.checkpoint_dir / f"{node_id}.ckpt")
        self._checkpoint_meta[node_id] = meta
        if self.obs is not None:
            self.obs.record(
                "checkpoint_write",
                node=node_id,
                size_bytes=len(data),
                flows=meta["flows"],
                completed=meta["completed"],
            )
        return meta

    def checkpoint_all(self) -> List[dict]:
        """The window-close trigger: checkpoint every member now."""
        return [self.checkpoint_node(node_id) for node_id in sorted(self.nodes)]

    def _consume_checkpoint(self, node_id: str) -> Optional[bytes]:
        """Consume a node's retained checkpoint: frame bytes out, nothing kept.

        Deliberately consume-semantics, not a read: the in-memory frame is
        popped and the disk file retired in the same step.  A checkpoint is
        single-use recovery material — once its node leaves or the frame is
        replayed into a failover, a retained copy could only be replayed a
        *second* time, resurrecting flows the books already settled.
        Returns the frame bytes, or ``None`` if the node had none.
        """
        data = self.checkpoints.pop(node_id, None)
        self._checkpoint_meta.pop(node_id, None)
        if self.checkpoint_dir is not None:
            try:
                (self.checkpoint_dir / f"{node_id}.ckpt").unlink()
            except FileNotFoundError:
                pass
        return data

    @property
    def checkpoint_bytes(self) -> int:
        """Total size of the retained checkpoints (the durability footprint)."""
        return sum(len(data) for data in self.checkpoints.values())

    @property
    def replica_memory_bytes(self) -> int:
        """Provisioned bytes of the replication plane across the fleet."""
        return sum(node.replica_memory_bytes for node in self.nodes.values())

    # ------------------------------------------------------------------ #
    # Membership: join / leave / failure with flow-state migration
    # ------------------------------------------------------------------ #

    def _rehome(self, flows: Iterable[Tuple[bytes, FlowRecord]]) -> dict:
        """Restore extracted flows onto their current owners (pin or ring)."""
        migrated = 0
        lost = 0
        pending: Dict[str, List[Tuple[bytes, FlowRecord]]] = {}
        for key_bytes, record in flows:
            pending.setdefault(self.owner_of(key_bytes), []).append((key_bytes, record))
        for node_id, group in pending.items():
            restored, failed = self.nodes[node_id].absorb_flows(group)
            migrated += restored
            lost += failed
        self.flows_migrated += migrated
        self.flows_lost += lost
        if self.obs is not None and lost:
            self._obs_flows_lost.inc(lost)
        if self.obs is not None and (migrated or lost):
            self.obs.record("migration", migrated=migrated, lost=lost)
        return {"migrated": migrated, "lost": lost}

    def _restore_flows(self, flows: Iterable[Tuple[bytes, Optional[FlowRecord]]]) -> int:
        """Install recovered flow copies on their current ring owners.

        The recovery counterpart of :meth:`_rehome`: each record lands on
        the node now owning its key (folding into an already re-learned
        record if one exists).  A ``None`` record is a bare preloaded
        table entry — the key is re-installed functionally but counts as
        no flow instance (it was never in the flow books).  Re-replication
        of the restored flows is the plane resync's job — every membership
        change ends with :meth:`_resync_replication_plane`, which rebuilds
        the backups from the post-recovery primary state.  Returns the
        number of flow records installed; a flow the table cannot place
        stays lost (it was already counted when its node died).
        """
        restored = 0
        for key_bytes, record in flows:
            owner = self.owner_of(key_bytes)
            if record is None:
                self.nodes[owner].engine.preload([key_bytes])
            elif self.nodes[owner].restore_flow(key_bytes, record):
                restored += 1
        return restored

    def add_node(
        self,
        node_id: str,
        snapshot: Optional[Union[bytes, str, Path, NodeSnapshot]] = None,
    ) -> dict:
        """A node joins: ring arcs remap and the affected live flows follow.

        The new member takes over roughly ``1/N`` of the keyspace; every
        live flow record in those arcs is extracted from its previous owner
        (table entry deleted, record detached without export) and re-homed
        onto the joiner, so packets arriving after the join hit existing
        state instead of being miscounted as new flows.

        ``snapshot`` warm-starts the join from a :mod:`repro.persist` node
        checkpoint — frame bytes, a decoded :class:`NodeSnapshot`, or the
        path of a ``checkpoint_dir`` file (for example one retained by a
        previous coordinator incarnation): the snapshot's flow records are restored
        onto their current ring owners — counted in ``flows_restored`` and
        credited against ``flows_lost`` — and its telemetry pipeline is
        merged into the joiner's.  The snapshot is read and decoded
        *before* membership changes, like every other restore guard: a
        corrupt or truncated frame raises
        :class:`~repro.persist.SnapshotFormatError` with the ring, the
        membership and the flow books untouched, never a half-applied
        join.  Only pass a snapshot that recovers state
        the cluster actually lost: unlike :meth:`fail_node`'s checkpoint
        replay, this path has no live-at-failure filter (the node that
        knew is long gone), so replaying still-live state folds harmlessly
        into the resident records but double-credits the loss books, and
        replaying flows that have since *ended* resurrects them — they
        will be sized a second time at the next expiry or window close,
        and ``flows_lost`` / ``telemetry_packets_lost`` can go negative
        (the conservation identity still balances; the negative counter is
        the visible symptom of the over-credit).
        """
        if node_id in self.nodes:
            raise ValueError(f"node {node_id!r} is already a member")
        # Decode and guard-check the snapshot *before* touching any state
        # (fail-before-mutate, like the merge/restore guards): a corrupt
        # frame must raise with membership, ring and books untouched — not
        # after the join has already remapped arcs and migrated flows.
        if snapshot is not None:
            if isinstance(snapshot, (str, Path)):
                snapshot = Path(snapshot).read_bytes()
            if not isinstance(snapshot, NodeSnapshot):
                snapshot = load_node_snapshot(
                    snapshot, obs=self.obs.metrics if self.obs is not None else None
                )
                if self.obs is not None:
                    self.obs.record("checkpoint_load", node=node_id, source="import")
        node = self._make_node(node_id)
        self.ring.add_node(node_id)
        self.nodes[node_id] = node
        self.routed.setdefault(node_id, 0)
        moved: List[Tuple[bytes, FlowRecord]] = []
        for other in self.nodes.values():
            if other is node:
                continue
            moved.extend(
                other.extract_flows(
                    lambda key_bytes, record: self.owner_of(key_bytes) == node_id
                )
            )
        outcome = self._rehome(moved)
        restored = 0
        if snapshot is not None:
            restored = self._restore_flows(snapshot.flows)
            self.flows_restored += restored
            self.flows_lost -= restored
            if snapshot.pipeline is not None and node.pipeline is not None:
                node.pipeline.merge(snapshot.pipeline)
                self.telemetry_packets_lost -= snapshot.pipeline.packets
            if self.obs is not None and restored:
                self.obs.record("restore", node=node_id, flows=restored, source="import")
        self._resync_replication_plane()
        self.joins += 1
        event = {"event": "join", "node": node_id, **outcome, "restored": restored}
        self.events.append(event)
        if self.obs is not None:
            self.obs.record(
                "join",
                node=node_id,
                migrated=outcome["migrated"],
                lost=outcome["lost"],
                restored=restored,
            )
        return event

    def remove_node(self, node_id: str) -> dict:
        """A node leaves gracefully: its live flows migrate to the survivors.

        The leaver hands its telemetry sketches over, so any backup copies
        of its stream held elsewhere must not survive (they would
        double-count its packets); the plane resync at the end guarantees
        that — it rebuilds every backup from the remaining members, so the
        leaver's stream copies and the segments it hosted for others all
        disappear together.  Its retained checkpoint is dropped too.
        """
        node = self._pop_member(node_id, action="remove")
        # Pins onto the leaver die with its membership — the flows they
        # steered re-home by ring below, like any other extracted flow.
        self._drop_pins_to(node_id)
        records = node.extract_flows()
        # The leaver also hands over its undrained export stream, so a
        # graceful departure loses no NetFlow records.
        self._pending_exports.extend(node.drain_exported())
        self.ring.remove_node(node_id)
        self._consume_checkpoint(node_id)
        self._checkpointed_at.pop(node_id, None)
        self._retire(node, reason="leave")
        outcome = self._rehome(records)
        self._resync_replication_plane()
        self.leaves += 1
        event = {"event": "leave", "node": node_id, **outcome}
        self.events.append(event)
        if self.obs is not None:
            self.obs.record(
                "leave", node=node_id, migrated=outcome["migrated"], lost=outcome["lost"]
            )
        return event

    def fail_node(self, node_id: str) -> dict:
        """A node crashes; recovery shrinks the loss to what was unprotected.

        Without protection the node's live flows and telemetry die with it
        — counted in ``flows_lost`` / ``telemetry_packets_lost``, never
        papered over.  With ``replication >= 2`` the survivors' replica
        copies of the dead node's live flows are promoted onto the keys'
        new owners and its per-primary backup pipelines are merged back,
        making the failure lossless for replicated keys; otherwise, if a
        checkpoint exists, its flows (filtered to the flows still live at
        failure, so ended flows are not resurrected) and pipeline are
        replayed, shrinking both losses to the since-checkpoint delta.
        Packets of genuinely lost flows arriving later are misses / new
        flows on the surviving owners, exactly as a real collector fleet
        would re-learn them.

        Failing the **last** node is refused with :class:`ValueError`
        before any state changes: an empty ring could steer no flow key,
        so the cluster must always keep at least one member (add a
        replacement first, then fail the old node).
        """
        node = self._pop_member(node_id, action="fail")
        # Pins onto the victim die with it — recovery below must install
        # promoted/replayed flows on live owners, never the corpse.
        self._drop_pins_to(node_id)
        live_keys = {key for key, _ in node.engine.live_flow_pairs()}

        # Gather the recovery material before anything is torn down; the
        # victim's live-key set is the promotion filter (copies of flows
        # that already ended must not be resurrected).
        recovery = "none"
        recovered_flows: List[Tuple[bytes, Optional[FlowRecord]]] = []
        recovered_pipeline: Optional[TelemetryPipeline] = None
        if self.replication > 1:
            recovery = "replicas"
            merged: Dict[bytes, Optional[FlowRecord]] = {}
            for other in self.nodes.values():
                for key, record in other.replica_flows.pop_matching(
                    lambda key: key in live_keys
                ):
                    existing = merged.get(key)
                    if existing is None:
                        merged[key] = record
                    else:
                        # Segments from re-pointed backups partition the
                        # packet stream; absorbing them reassembles it.
                        existing.absorb(record)
            if self.telemetry_enabled:
                pieces = [
                    other.backup_pipelines.pop(node_id)
                    for other in self.nodes.values()
                    if node_id in other.backup_pipelines
                ]
                if pieces:
                    recovered_pipeline = TelemetryPipeline(
                        self.telemetry_config, seed=self.telemetry_seed
                    )
                    for piece in pieces:
                        recovered_pipeline.merge(piece)
            checkpoint_data = self._consume_checkpoint(node_id)
            if checkpoint_data is not None:
                # The replica plane is normally the fuller source, but it
                # can cover less than a retained checkpoint (both sources
                # are exact lower bounds on each flow): recover each flow
                # from whichever saw more of it, and take the pipeline
                # with the wider packet coverage.
                snapshot = load_node_snapshot(
                    checkpoint_data, obs=self.obs.metrics if self.obs is not None else None
                )
                used_checkpoint = False
                for key, record in snapshot.flows:
                    if key not in live_keys:
                        continue
                    if record is None:
                        # A bare preloaded entry: worth re-installing, but
                        # never preferable to any replica record.
                        if key not in merged:
                            merged[key] = None
                            used_checkpoint = True
                        continue
                    existing = merged.get(key)
                    if existing is None or existing.packets < record.packets:
                        merged[key] = record
                        used_checkpoint = True
                if snapshot.pipeline is not None and (
                    recovered_pipeline is None
                    or snapshot.pipeline.packets > recovered_pipeline.packets
                ):
                    recovered_pipeline = snapshot.pipeline
                    used_checkpoint = True
                if used_checkpoint:
                    recovery = "replicas+checkpoint"
            recovered_flows = list(merged.items())
        elif node_id in self.checkpoints:
            recovery = "checkpoint"
            snapshot = load_node_snapshot(
                self._consume_checkpoint(node_id),
                obs=self.obs.metrics if self.obs is not None else None,
            )
            recovered_flows = [
                (key, record) for key, record in snapshot.flows if key in live_keys
            ]
            recovered_pipeline = snapshot.pipeline
        self._checkpointed_at.pop(node_id, None)

        lost = node.fail()
        self.ring.remove_node(node_id)
        self.flows_lost += lost
        pipeline_packets = node.pipeline.packets if node.pipeline is not None else 0
        self.telemetry_packets_lost += pipeline_packets
        self._retire(node, reason="failure", keep_telemetry=False)

        restored = self._restore_flows(recovered_flows)
        self.flows_restored += restored
        self.flows_lost -= restored
        recovered_packets = 0
        if recovered_pipeline is not None:
            self._retired_pipelines.append(recovered_pipeline)
            recovered_packets = recovered_pipeline.packets
            self.telemetry_packets_lost -= recovered_packets
        self._resync_replication_plane()

        if self.obs is not None and lost - restored > 0:
            self._obs_flows_lost.inc(lost - restored)
        self.failures += 1
        event = {
            "event": "failure",
            "node": node_id,
            "migrated": 0,
            "lost": lost - restored,
            "restored": restored,
            "recovery": recovery,
            "telemetry_packets_lost": pipeline_packets - recovered_packets,
        }
        self.events.append(event)
        if self.obs is not None:
            self.obs.record(
                "failure",
                node=node_id,
                lost=event["lost"],
                restored=restored,
                recovery=recovery,
                telemetry_packets_lost=event["telemetry_packets_lost"],
            )
            if recovery.startswith("replicas"):
                self.obs.record(
                    "replica_promotion",
                    node=node_id,
                    flows=restored,
                    telemetry_packets=recovered_packets,
                )
            if "checkpoint" in recovery:
                self.obs.record("checkpoint_load", node=node_id, source="failover")
            if restored:
                self.obs.record("restore", node=node_id, flows=restored, source=recovery)
        return event

    def _resync_replication_plane(self) -> None:
        """Rebuild every backup from current primary state after a
        membership change.

        Joins, leaves and failures all invalidate parts of the backup
        plane — a failed or departed node takes the segments and backup
        pipelines it hosted with it, and a joiner may arrive into a
        cluster that ran alone (mirroring nothing) for a while.  Rather
        than patching each hole, the plane is rebuilt wholesale from the
        one source that is always complete, the primaries themselves:
        every live flow is re-seeded onto its current backup (the full
        record supersedes every partial segment), and every primary's
        pipeline is deep-copied (via its own snapshot codec) onto one
        backup host.  Exactness of a later promotion follows from the
        time-partition argument — full copy as of now, plus whatever the
        per-key backups mirror afterwards.  Membership changes are rare,
        so the O(live flows + pipeline size) rebuild is cheap insurance
        against silently degraded redundancy.
        """
        if self.replication <= 1:
            return
        for node in self.nodes.values():
            node.replica_flows.clear()
            node.backup_pipelines.clear()
        if len(self.ring) < 2:
            return  # alone again: nothing to mirror onto
        for node in self.nodes.values():
            for key_bytes, record in node.engine.live_flow_pairs():
                if record is None:
                    continue  # a bare preloaded entry has no state to copy
                for backup_id in self.backups_of(key_bytes):
                    self.nodes[backup_id].replica_flows.seed(key_bytes, record)
            if node.pipeline is not None and node.pipeline.packets:
                hosts = [other for other in self.nodes if other != node.node_id]
                self.nodes[min(hosts)].backup_pipelines[node.node_id] = loads(
                    dumps(node.pipeline)
                )

    # ------------------------------------------------------------------ #
    # Adaptive placement: weights and flow pins (the rebalance levers)
    # ------------------------------------------------------------------ #

    @property
    def pins(self) -> Dict[bytes, str]:
        """Current flow-pin overlay (a copy; mutate via :meth:`pin_flows`)."""
        return dict(self._pins)

    def _drop_pins_to(self, node_id: str) -> int:
        """Forget every pin targeting ``node_id`` (it left the membership)."""
        if not self._pins:
            return 0
        stale = [key for key, target in self._pins.items() if target == node_id]
        for key in stale:
            del self._pins[key]
        return len(stale)

    def pin_flows(self, assignments: Dict[bytes, str]) -> dict:
        """Pin flow keys onto explicit owner nodes, migrating live state.

        The targeted-migration lever of the rebalance policy: a handful of
        elephant flows concentrated by a skewed workload cannot be separated
        by weight changes (those move whole arcs), so each hot key is pinned
        to an explicit node.  Pins override the ring in :meth:`owner_of` /
        :meth:`route`, survive unrelated membership changes, and die with
        their target's membership.  Live flows affected by a changed pin are
        migrated (detach/absorb — no export, no miscount) and the
        replication plane is resynced.  Unknown target nodes are rejected
        before any pin is installed.
        """
        for key_bytes, target in assignments.items():
            if target not in self.nodes:
                raise KeyError(f"pin target {target!r} is not a member")
        changed: Dict[bytes, str] = {}
        for key_bytes, target in assignments.items():
            if self._pins.get(key_bytes) == target:
                continue
            self._pins[key_bytes] = target
            changed[key_bytes] = target
        if not changed:
            return {"event": "pin", "pinned": 0, "migrated": 0, "lost": 0}
        moved: List[Tuple[bytes, FlowRecord]] = []
        for node in list(self.nodes.values()):
            moved.extend(
                node.extract_flows(
                    lambda key_bytes, record, node_id=node.node_id: (
                        changed.get(key_bytes, node_id) != node_id
                    )
                )
            )
        outcome = self._rehome(moved)
        self._resync_replication_plane()
        event = {"event": "pin", "pinned": len(changed), **outcome}
        self.events.append(event)
        if self.obs is not None:
            self.obs.record(
                "pin",
                pinned=len(changed),
                total_pins=len(self._pins),
                migrated=outcome["migrated"],
                lost=outcome["lost"],
            )
        return event

    def unpin_flows(self, keys: Optional[Iterable[bytes]] = None) -> dict:
        """Remove pins (all of them by default); flows return to ring owners."""
        targets = list(self._pins) if keys is None else list(keys)
        removed = {key for key in targets if self._pins.pop(key, None) is not None}
        if not removed:
            return {"event": "unpin", "unpinned": 0, "migrated": 0, "lost": 0}
        moved: List[Tuple[bytes, FlowRecord]] = []
        for node in list(self.nodes.values()):
            moved.extend(
                node.extract_flows(
                    lambda key_bytes, record, node_id=node.node_id: (
                        key_bytes in removed and self.owner_of(key_bytes) != node_id
                    )
                )
            )
        outcome = self._rehome(moved)
        self._resync_replication_plane()
        event = {"event": "unpin", "unpinned": len(removed), **outcome}
        self.events.append(event)
        if self.obs is not None:
            self.obs.record(
                "unpin",
                unpinned=len(removed),
                total_pins=len(self._pins),
                migrated=outcome["migrated"],
                lost=outcome["lost"],
            )
        return event

    def set_node_weight(self, node_id: str, weight: int) -> dict:
        """Change a member's ring weight and migrate the flows whose arcs moved.

        The diffuse lever of the rebalance policy: ring-share unevenness
        (as opposed to a few hot keys) is corrected by shrinking the hot
        node's vnode count or growing a cold one's —
        :meth:`HashRing.set_weight` does the delta rebuild, and the
        placement reconciliation migrates exactly the live flows whose
        arcs changed owner.  Pinned flows stay put: pins outrank the ring.
        """
        if node_id not in self.nodes:
            raise KeyError(f"node {node_id!r} is not a member")
        previous = self.ring.weight_of(node_id)
        self.ring.set_weight(node_id, weight)
        if weight == previous:
            return {
                "event": "reweight",
                "node": node_id,
                "previous_weight": previous,
                "weight": weight,
                "migrated": 0,
                "lost": 0,
            }
        outcome = self._reconcile_placement()
        event = {
            "event": "reweight",
            "node": node_id,
            "previous_weight": previous,
            "weight": weight,
            **outcome,
        }
        self.events.append(event)
        if self.obs is not None:
            self.obs.record(
                "reweight",
                node=node_id,
                weight=weight,
                previous_weight=previous,
                migrated=outcome["migrated"],
                lost=outcome["lost"],
            )
        return event

    def _reconcile_placement(self) -> dict:
        """Migrate every live flow not sitting on its current owner.

        The placement functions (:meth:`owner_of`) just changed under the
        resident flows — a weight delta moved arcs.  Extract exactly the
        flows whose owner is now elsewhere, re-home them, and rebuild the
        replication plane (backup sets follow the same ring walk).
        """
        moved: List[Tuple[bytes, FlowRecord]] = []
        for node in list(self.nodes.values()):
            moved.extend(
                node.extract_flows(
                    lambda key_bytes, record, node_id=node.node_id: (
                        self.owner_of(key_bytes) != node_id
                    )
                )
            )
        outcome = self._rehome(moved)
        self._resync_replication_plane()
        return outcome

    def _pop_member(self, node_id: str, action: str = "remove") -> ClusterNode:
        if node_id not in self.nodes:
            raise KeyError(f"node {node_id!r} is not a member")
        if len(self.nodes) == 1:
            raise ValueError(
                f"cannot {action} node {node_id!r}: it is the cluster's last "
                "member, and an empty ring could steer no flow key; add a "
                "replacement node first"
            )
        return self.nodes.pop(node_id)

    def _retire(self, node: ClusterNode, reason: str, keep_telemetry: bool = True) -> None:
        self._retired_reports.append(
            {
                "node_id": node.node_id,
                "reason": reason,
                "elapsed_ps": node.elapsed_ps,
                "flow_books": node.flow_state_books(),
                **node.totals(),
            }
        )
        if keep_telemetry and node.pipeline is not None:
            # A graceful leaver hands its sketches over before departing.
            self._retired_pipelines.append(node.pipeline)

    # ------------------------------------------------------------------ #
    # Global accounting
    # ------------------------------------------------------------------ #

    def alive_totals(self) -> dict:
        """Hit/miss/new-flow accounting summed over the surviving nodes."""
        totals = {"completed": 0, "hits": 0, "misses": 0, "new_flows": 0}
        for node in self.nodes.values():
            for key, value in node.totals().items():
                totals[key] += value
        return totals

    def cluster_totals(self) -> dict:
        """Alive totals plus departed/failed nodes' retained contributions.

        This is the figure that must always balance: every ingested
        descriptor was completed by exactly one node, member or not, so
        ``cluster_totals()["completed"] == ingested`` whenever all batches
        have been processed.
        """
        totals = self.alive_totals()
        for report in self._retired_reports:
            for key in totals:
                totals[key] += report[key]
        return totals

    @property
    def active_flows(self) -> int:
        return sum(node.active_flows for node in self.nodes.values())

    def flow_books(self) -> dict:
        """Cluster-wide flow-record conservation: every instance created is
        retired exactly once.

        A record instance is *born* by a flow-state creation or by a
        recovery install (checkpoint replay / replica promotion, counted
        in ``flows_restored``), and *retired* by expiry/termination
        (``exported``), by folding into an already-resident record
        (``folded``), or by being lost (node death or an unplaceable
        migration).  Because each successful restore also decrements the
        net loss, the restores cancel and the identity reduces to::

            flows_created == live + exported + folded + flows_lost

        summed over alive and retired nodes.  ``balanced`` is that check;
        the invariant tests assert it after arbitrary membership histories.
        """
        created = exported = folded = 0
        for node in self.nodes.values():
            books = node.flow_state_books()
            created += books["created"]
            exported += books["exported"]
            folded += books["folded"]
        for report in self._retired_reports:
            books = report["flow_books"]
            created += books["created"]
            exported += books["exported"]
            folded += books["folded"]
        live = self.active_flows
        return {
            "flows_created": created,
            "live": live,
            "exported": exported,
            "folded": folded,
            "flows_lost": self.flows_lost,
            "flows_migrated": self.flows_migrated,
            "flows_restored": self.flows_restored,
            "balanced": created == live + exported + folded + self.flows_lost,
        }

    @property
    def elapsed_ps(self) -> int:
        """Cluster wall clock: the slowest node's simulated time."""
        elapsed = [node.elapsed_ps for node in self.nodes.values()]
        elapsed.extend(report["elapsed_ps"] for report in self._retired_reports)
        return max(elapsed, default=0)

    @property
    def throughput_mdesc_s(self) -> float:
        """Aggregate processing rate: all nodes run concurrently."""
        elapsed = self.elapsed_ps
        if elapsed <= 0:
            return 0.0
        return self.cluster_totals()["completed"] * 1e6 / elapsed

    @property
    def load_imbalance(self) -> float:
        """Busiest alive node's completed load over the mean (0.0 when idle)."""
        loads = [node.completed for node in self.nodes.values()]
        total = sum(loads)
        if total <= 0 or not loads:
            return 0.0
        return max(loads) * len(loads) / total

    def imbalance_report(self, threshold: float = 1.25) -> dict:
        """Observed load versus the ring's expected share, per alive node.

        A node is flagged *overloaded* when its observed share of completed
        descriptors exceeds ``threshold`` times its expected arc share —
        the signal that traffic is skewed (or the ring needs more vnodes).
        """
        if threshold <= 1.0:
            raise ValueError("threshold must exceed 1.0")
        totals = self.alive_totals()["completed"]
        shares = self.ring.arc_shares()
        rows = []
        overloaded = []
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            observed = node.completed / totals if totals else 0.0
            expected = shares.get(node_id, 0.0)
            flagged = bool(totals) and expected > 0.0 and observed > threshold * expected
            if flagged:
                overloaded.append(node_id)
            rows.append(
                {
                    "node": node_id,
                    "completed": node.completed,
                    "observed_share": round(observed, 4),
                    "expected_share": round(expected, 4),
                    "overloaded": flagged,
                }
            )
        return {
            "rows": rows,
            "load_imbalance": self.load_imbalance,
            "overloaded": overloaded,
            "imbalance_detected": bool(overloaded),
            "threshold": threshold,
        }

    def windowed_node_loads(self, windows: int = 1) -> Dict[str, float]:
        """Per-node completed descriptors over the last closed window(s).

        The control loop's load signal: hit + miss deltas of
        ``repro_engine_outcomes_total`` from the windowed registry, summed
        per alive node over the most recent ``windows`` closed windows (a
        node idle in that span reads 0.0).  That counter is credited by the
        engines in sequential/thread mode and reconciled at the barrier in
        process mode, so the signal exists under every executor.  Requires
        the coordinator's obs plane to carry a windowed registry
        (``window_ps=``); fewer closed windows than asked for means the sum
        covers what exists.
        """
        obs = self._require_obs()
        if obs.windows is None:
            raise RuntimeError(
                "windowed load signals need a windowed registry: build the "
                "Observability with window_ps="
            )
        loads: Dict[str, float] = {node_id: 0.0 for node_id in self.nodes}
        for window in obs.windows.last(windows):
            for result in ("hit", "miss"):
                grouped = window.values(
                    "repro_engine_outcomes_total",
                    where={"result": result},
                    group_by="node",
                )
                for node_id, value in grouped.items():
                    if node_id in loads:
                        loads[node_id] += value
        return loads

    def windowed_imbalance_report(
        self, threshold: float = 1.25, windows: int = 1
    ) -> dict:
        """The time-resolved :meth:`imbalance_report`: last window(s) only.

        Same shape and flagging rule as the lifetime report, but observed
        shares come from :meth:`windowed_node_loads` instead of cumulative
        ``completed`` totals.  The distinction matters exactly when the
        control loop does: a hotspot that starts mid-run (``hotspot_shift``)
        is diluted by the steady first half in the lifetime shares and
        under-flagged, while the windowed shares show the post-shift
        concentration at full strength.  ``load_imbalance`` here is the
        windowed figure (busiest node's window load over the mean).
        """
        if threshold <= 1.0:
            raise ValueError("threshold must exceed 1.0")
        loads = self.windowed_node_loads(windows)
        total = sum(loads.values())
        shares = self.ring.arc_shares()
        rows = []
        overloaded = []
        for node_id in sorted(loads):
            observed = loads[node_id] / total if total else 0.0
            expected = shares.get(node_id, 0.0)
            flagged = bool(total) and expected > 0.0 and observed > threshold * expected
            if flagged:
                overloaded.append(node_id)
            rows.append(
                {
                    "node": node_id,
                    "completed": loads[node_id],
                    "observed_share": round(observed, 4),
                    "expected_share": round(expected, 4),
                    "overloaded": flagged,
                }
            )
        imbalance = (
            max(loads.values()) * len(loads) / total if total and loads else 0.0
        )
        return {
            "rows": rows,
            "load_imbalance": imbalance,
            "overloaded": overloaded,
            "imbalance_detected": bool(overloaded),
            "threshold": threshold,
            "windows": windows,
        }

    def _imbalance_context(self) -> dict:
        """Diagnosis payload for the ``node_imbalance`` watchdog's onset.

        Windowed when closed windows exist — the rule itself is windowed,
        so the diagnosis must describe the window that tripped it, not a
        lifetime average that dilutes mid-run hotspots — with the lifetime
        report as the fallback for plain (un-windowed) registries.
        """
        if (
            self.obs is not None
            and self.obs.windows is not None
            and self.obs.windows.windows
        ):
            return self.windowed_imbalance_report()
        return self.imbalance_report()

    # ------------------------------------------------------------------ #
    # Cluster-wide NetFlow export
    # ------------------------------------------------------------------ #

    def drain_exported(self) -> List[FlowRecord]:
        """The cluster-wide merged export stream: every record retired
        anywhere in the fleet since the last drain, handed over exactly once.

        Collects each alive node's drained export stream (see
        :meth:`FlowStateTable.drain_exported
        <repro.core.flow_state.FlowStateTable.drain_exported>`) plus the
        records graceful leavers handed over on departure, ordered by
        ``(last_seen_ps, first_seen_ps, key)`` so the stream an exporter
        (e.g. :class:`~repro.trace.netflow.NetFlowV5Exporter`) emits is
        deterministic under any node count.  A *failed* node's undrained
        exports die with it — like its sketches, the loss is visible in
        the books (its retired report still counts them as exported)
        rather than papered over.
        """
        drained = list(self._pending_exports)
        self._pending_exports.clear()
        for node_id in sorted(self.nodes):
            drained.extend(self.nodes[node_id].drain_exported())
        drained.sort(key=lambda r: (r.last_seen_ps, r.first_seen_ps, r.key.pack()))
        self.exports_drained += len(drained)
        if self.obs is not None:
            self.obs.metrics.counter(
                "repro_cluster_exports_drained_total",
                "Flow records handed to the cluster-wide export stream",
            ).inc(len(drained))
            self.obs.record("drain", records=len(drained))
        return drained

    # ------------------------------------------------------------------ #
    # Cluster-wide telemetry
    # ------------------------------------------------------------------ #

    def merged_telemetry(self, include_departed: bool = True) -> TelemetryPipeline:
        """The fleet-level measurement plane: all per-node pipelines merged.

        Builds a fresh pipeline from the shared config/seed and folds in
        every alive node's sketches, plus graceful leavers' retained
        pipelines (``include_departed``).  Failed nodes contributed nothing
        — their sketches died with them; ``telemetry_packets_lost`` says
        how much of the stream the merged view is therefore missing.
        """
        if not self.telemetry_enabled:
            raise RuntimeError("cluster was built with telemetry disabled")
        merged = TelemetryPipeline(self.telemetry_config, seed=self.telemetry_seed)
        for node in self.nodes.values():
            merged.merge(node.pipeline)
        if include_departed:
            for pipeline in self._retired_pipelines:
                merged.merge(pipeline)
        return merged

    # ------------------------------------------------------------------ #
    # Observability exports
    # ------------------------------------------------------------------ #

    def _require_obs(self) -> Observability:
        if self.obs is None:
            raise RuntimeError("cluster was built with obs disabled (pass obs=True)")
        return self.obs

    @property
    def journal(self):
        """The cluster's event journal (requires ``obs``)."""
        return self._require_obs().journal

    def observe_fleet(self) -> None:
        """Refresh the point-in-time fleet gauges from current state.

        Counters and timings accumulate inline on the hot path; gauges
        (live flows, loss books, retained checkpoint bytes, sketch
        occupancy) describe *now* and are sampled here — called by
        :meth:`metrics_snapshot` / :meth:`prometheus_text`, or directly
        before scraping a shared registry.
        """
        obs = self._require_obs()
        metrics = obs.metrics
        fleet = metrics.gauge(
            "repro_cluster_fleet",
            "Point-in-time fleet state (see the 'figure' label)",
            labels=("figure",),
        )
        fleet.set(len(self.nodes), figure="nodes_alive")
        fleet.set(self.active_flows, figure="active_flows")
        fleet.set(self.flows_migrated, figure="flows_migrated")
        fleet.set(self.flows_lost, figure="flows_lost")
        fleet.set(self.flows_restored, figure="flows_restored")
        fleet.set(self.telemetry_packets_lost, figure="telemetry_packets_lost")
        fleet.set(self.checkpoint_bytes, figure="checkpoint_bytes")
        fleet.set(self.replica_memory_bytes, figure="replica_memory_bytes")
        fleet.set(len(self._pending_exports), figure="exports_pending")
        node_flows = metrics.gauge(
            "repro_node_active_flows", "Live flow records per node", labels=("node",)
        )
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            node_flows.set(node.active_flows, node=node_id)
            if node.pipeline is not None:
                node.pipeline.record_occupancy(metrics, node=node_id)

    def metrics_snapshot(self) -> dict:
        """The ``repro.obs/v1`` JSON view of the fleet registry (gauges fresh)."""
        self.observe_fleet()
        return registry_snapshot(self._require_obs().metrics)

    def prometheus_text(self) -> str:
        """Prometheus text exposition of the fleet registry (gauges fresh)."""
        self.observe_fleet()
        return to_prometheus_text(self._require_obs().metrics)

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def report(self) -> dict:
        return {
            "nodes": sorted(self.nodes),
            "shards_per_node": self.shards_per_node,
            "ingested": self.ingested,
            "alive_totals": self.alive_totals(),
            "cluster_totals": self.cluster_totals(),
            "active_flows": self.active_flows,
            "throughput_mdesc_s": self.throughput_mdesc_s,
            "parallel": self.parallel_report(),
            "load_imbalance": self.load_imbalance,
            "pinned_flows": len(self._pins),
            "flows_migrated": self.flows_migrated,
            "flows_lost": self.flows_lost,
            "flows_restored": self.flows_restored,
            "flow_books": self.flow_books(),
            "telemetry_packets_lost": self.telemetry_packets_lost,
            "replication": self.replication,
            "replicated_packets": self.replicated_packets,
            "replica_memory_bytes": self.replica_memory_bytes,
            "checkpoint_interval": self.checkpoint_interval,
            "checkpoint_dir": str(self.checkpoint_dir) if self.checkpoint_dir else None,
            "checkpoints_taken": self.checkpoints_taken,
            "checkpoint_bytes": self.checkpoint_bytes,
            "exports_drained": self.exports_drained,
            "exports_pending": len(self._pending_exports),
            "checkpoints": {
                node_id: dict(meta) for node_id, meta in self._checkpoint_meta.items()
            },
            "joins": self.joins,
            "leaves": self.leaves,
            "failures": self.failures,
            "routed": dict(self.routed),
            "events": list(self.events),
            "per_node": [
                self.nodes[node_id].report() for node_id in sorted(self.nodes)
            ],
            "retired": list(self._retired_reports),
            "ring": self.ring.stats(),
        }

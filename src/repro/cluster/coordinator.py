"""Cluster-wide orchestration: steering, membership, global accounting.

:class:`ClusterCoordinator` is the control plane of the simulated fleet.  It
owns a :class:`~repro.cluster.ring.HashRing` and a set of
:class:`~repro.cluster.node.ClusterNode`\\ s, steers descriptor batches to
the nodes that own their flow keys, and keeps the books that make the
simulation honest:

* **Global accounting** — hit / miss / new-flow / throughput totals summed
  over alive nodes, with departed and failed nodes' contributions retained
  separately so ``cluster_totals()`` always balances against what was
  ingested, even across membership changes.
* **Membership** — :meth:`add_node` (join with live-flow migration onto the
  new owner), :meth:`remove_node` (graceful leave, flows re-homed), and
  :meth:`fail_node` (crash: live flow state and telemetry sketches are
  lost, and the loss is counted, not papered over).
* **Load imbalance** — observed per-node load versus the ring's expected
  arc share (:meth:`imbalance_report`), separating consistent-hashing
  unevenness from genuinely skewed traffic such as the ``hotspot_shift``
  scenario.
* **Mergeable telemetry** — :meth:`merged_telemetry` folds the per-node
  sketch pipelines into one cluster-wide measurement plane (exact for
  Count-Min and bitmap unions, bounded-error for Space-Saving), which is
  what an operator would query for fleet-level heavy hitters and
  superspreaders.

Because flows are pinned to nodes by ring hash — like shards inside one
node — the cluster's aggregate hit/miss/new-flow totals on a static
membership equal a single LUT serving the whole stream.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.config import FlowLUTConfig, small_test_config
from repro.core.flow_state import FlowRecord
from repro.cluster.node import ClusterNode
from repro.cluster.ring import DEFAULT_VNODES, HashRing
from repro.sim.rng import SeedLike
from repro.telemetry.pipeline import TelemetryConfig, TelemetryPipeline

DEFAULT_BATCH_SIZE = 512


class ClusterCoordinator:
    """Batched ingestion across a ring-steered fleet of measurement nodes.

    Parameters
    ----------
    nodes: initial membership — a count (IDs ``node0..nodeN-1``) or explicit
        node IDs.
    config: per-shard Flow LUT configuration shared by every node; defaults
        to the small test prototype (like the scenario runner).
    shards_per_node: Flow LUT devices inside each node.
    vnodes: virtual nodes per ring member.
    telemetry: give every node a telemetry pipeline; all pipelines share
        ``telemetry_config`` / ``telemetry_seed`` so they merge.
    flow_timeout_us: housekeeping timeout for per-node flow state.
    batch_size: default sub-batch size for :meth:`ingest`.
    """

    def __init__(
        self,
        nodes: Union[int, Sequence[str]] = 4,
        config: Optional[FlowLUTConfig] = None,
        shards_per_node: int = 1,
        vnodes: int = DEFAULT_VNODES,
        telemetry: bool = True,
        telemetry_config: Optional[TelemetryConfig] = None,
        telemetry_seed: SeedLike = 0,
        flow_timeout_us: Optional[float] = None,
        batch_size: int = DEFAULT_BATCH_SIZE,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch_size must be positive")
        if isinstance(nodes, int):
            if nodes <= 0:
                raise ValueError("node count must be positive")
            node_ids: List[str] = [f"node{index}" for index in range(nodes)]
        else:
            node_ids = list(nodes)
            if not node_ids:
                raise ValueError("at least one node is required")
            if len(set(node_ids)) != len(node_ids):
                raise ValueError("node IDs must be unique")
        self.config = config or small_test_config()
        self.shards_per_node = shards_per_node
        self.telemetry_enabled = telemetry
        self.telemetry_config = telemetry_config
        self.telemetry_seed = telemetry_seed
        self.flow_timeout_us = flow_timeout_us
        self.batch_size = batch_size

        self.ring = HashRing(vnodes=vnodes)
        self.nodes: Dict[str, ClusterNode] = {}
        for node_id in node_ids:
            self.ring.add_node(node_id)
            self.nodes[node_id] = self._make_node(node_id)

        self.ingested = 0
        self.flows_migrated = 0
        self.flows_lost = 0
        self.telemetry_packets_lost = 0
        self.joins = 0
        self.leaves = 0
        self.failures = 0
        self.routed: Dict[str, int] = {node_id: 0 for node_id in node_ids}
        # Departed/failed nodes' final accounting, so the cluster-wide books
        # keep balancing after membership changes.
        self._retired_reports: List[dict] = []
        self._retired_pipelines: List[TelemetryPipeline] = []
        self.events: List[dict] = []

    def _make_node(self, node_id: str) -> ClusterNode:
        return ClusterNode(
            node_id,
            config=self.config,
            shards=self.shards_per_node,
            telemetry=self.telemetry_enabled,
            telemetry_config=self.telemetry_config,
            telemetry_seed=self.telemetry_seed,
            flow_timeout_us=self.flow_timeout_us,
        )

    # ------------------------------------------------------------------ #
    # Steering and ingestion
    # ------------------------------------------------------------------ #

    def owner_of(self, key_bytes: bytes) -> str:
        """The node currently owning a flow key."""
        return self.ring.lookup(key_bytes)

    def route(self, descriptors: Sequence) -> Dict[str, List]:
        """Partition a descriptor batch by ring owner (order kept per node)."""
        groups: Dict[str, List] = {node_id: [] for node_id in self.nodes}
        for descriptor in descriptors:
            groups[self.ring.lookup(descriptor.key_bytes)].append(descriptor)
        return groups

    def ingest(self, descriptors: Sequence, batch_size: Optional[int] = None) -> dict:
        """Steer one stream segment across the fleet in per-node batches.

        Every descriptor is routed to exactly one alive node and processed
        there in sub-batches of ``batch_size``; nodes are independent
        devices, so the wall-clock cost of a segment is the slowest node's
        simulated time.  Returns the per-node packet counts of this call.
        """
        size = self.batch_size if batch_size is None else batch_size
        if size <= 0:
            raise ValueError("batch_size must be positive")
        groups = self.route(descriptors)
        per_node: Dict[str, int] = {}
        for node_id, group in groups.items():
            if not group:
                continue
            node = self.nodes[node_id]
            for offset in range(0, len(group), size):
                node.process_batch(group[offset : offset + size])
            per_node[node_id] = len(group)
            self.routed[node_id] = self.routed.get(node_id, 0) + len(group)
        self.ingested += len(descriptors)
        return {"packets": len(descriptors), "per_node": per_node}

    def run_housekeeping(self, now_ps: Optional[int] = None) -> int:
        """One flow-aging pass across every alive node; returns removals."""
        return sum(node.run_housekeeping(now_ps) for node in self.nodes.values())

    def finalize_telemetry(self) -> int:
        """Close the measurement window on every alive node.

        Sizes the flows still live into each node's flow-size distribution
        (expired flows were sized by :meth:`run_housekeeping`), so a
        subsequent :meth:`merged_telemetry` carries the fleet-wide
        flow-size histogram, not just the streaming sketches.  Call once
        per window, before merging.
        """
        return sum(node.finalize_telemetry() for node in self.nodes.values())

    # ------------------------------------------------------------------ #
    # Membership: join / leave / failure with flow-state migration
    # ------------------------------------------------------------------ #

    def _rehome(self, flows: Iterable[Tuple[bytes, FlowRecord]]) -> dict:
        """Restore extracted flows onto their current ring owners."""
        migrated = 0
        lost = 0
        pending: Dict[str, List[Tuple[bytes, FlowRecord]]] = {}
        for key_bytes, record in flows:
            pending.setdefault(self.ring.lookup(key_bytes), []).append((key_bytes, record))
        for node_id, group in pending.items():
            restored, failed = self.nodes[node_id].absorb_flows(group)
            migrated += restored
            lost += failed
        self.flows_migrated += migrated
        self.flows_lost += lost
        return {"migrated": migrated, "lost": lost}

    def add_node(self, node_id: str) -> dict:
        """A node joins: ring arcs remap and the affected live flows follow.

        The new member takes over roughly ``1/N`` of the keyspace; every
        live flow record in those arcs is extracted from its previous owner
        (table entry deleted, record detached without export) and re-homed
        onto the joiner, so packets arriving after the join hit existing
        state instead of being miscounted as new flows.
        """
        if node_id in self.nodes:
            raise ValueError(f"node {node_id!r} is already a member")
        node = self._make_node(node_id)
        self.ring.add_node(node_id)
        self.nodes[node_id] = node
        self.routed.setdefault(node_id, 0)
        moved: List[Tuple[bytes, FlowRecord]] = []
        for other in self.nodes.values():
            if other is node:
                continue
            moved.extend(
                other.extract_flows(
                    lambda key_bytes, record: self.ring.lookup(key_bytes) == node_id
                )
            )
        outcome = self._rehome(moved)
        self.joins += 1
        event = {"event": "join", "node": node_id, **outcome}
        self.events.append(event)
        return event

    def remove_node(self, node_id: str) -> dict:
        """A node leaves gracefully: its live flows migrate to the survivors."""
        node = self._pop_member(node_id)
        records = node.extract_flows()
        self.ring.remove_node(node_id)
        self._retire(node, reason="leave")
        outcome = self._rehome(records)
        self.leaves += 1
        event = {"event": "leave", "node": node_id, **outcome}
        self.events.append(event)
        return event

    def fail_node(self, node_id: str) -> dict:
        """A node crashes: its flow state and telemetry die with it.

        Nothing is migrated — the lost live flows are counted in
        ``flows_lost`` and the node's telemetry packets in
        ``telemetry_packets_lost``.  Packets of the lost flows arriving
        later are misses / new flows on the surviving owners, exactly as a
        real collector fleet would re-learn them.
        """
        node = self._pop_member(node_id)
        lost = node.fail()
        self.ring.remove_node(node_id)
        self.flows_lost += lost
        if node.pipeline is not None:
            self.telemetry_packets_lost += node.pipeline.packets
        self._retire(node, reason="failure", keep_telemetry=False)
        self.failures += 1
        event = {"event": "failure", "node": node_id, "migrated": 0, "lost": lost}
        self.events.append(event)
        return event

    def _pop_member(self, node_id: str) -> ClusterNode:
        if node_id not in self.nodes:
            raise KeyError(f"node {node_id!r} is not a member")
        if len(self.nodes) == 1:
            raise ValueError("cannot remove the last node of the cluster")
        return self.nodes.pop(node_id)

    def _retire(self, node: ClusterNode, reason: str, keep_telemetry: bool = True) -> None:
        self._retired_reports.append(
            {
                "node_id": node.node_id,
                "reason": reason,
                "elapsed_ps": node.elapsed_ps,
                **node.totals(),
            }
        )
        if keep_telemetry and node.pipeline is not None:
            # A graceful leaver hands its sketches over before departing.
            self._retired_pipelines.append(node.pipeline)

    # ------------------------------------------------------------------ #
    # Global accounting
    # ------------------------------------------------------------------ #

    def alive_totals(self) -> dict:
        """Hit/miss/new-flow accounting summed over the surviving nodes."""
        totals = {"completed": 0, "hits": 0, "misses": 0, "new_flows": 0}
        for node in self.nodes.values():
            for key, value in node.totals().items():
                totals[key] += value
        return totals

    def cluster_totals(self) -> dict:
        """Alive totals plus departed/failed nodes' retained contributions.

        This is the figure that must always balance: every ingested
        descriptor was completed by exactly one node, member or not, so
        ``cluster_totals()["completed"] == ingested`` whenever all batches
        have been processed.
        """
        totals = self.alive_totals()
        for report in self._retired_reports:
            for key in totals:
                totals[key] += report[key]
        return totals

    @property
    def active_flows(self) -> int:
        return sum(node.active_flows for node in self.nodes.values())

    @property
    def elapsed_ps(self) -> int:
        """Cluster wall clock: the slowest node's simulated time."""
        elapsed = [node.elapsed_ps for node in self.nodes.values()]
        elapsed.extend(report["elapsed_ps"] for report in self._retired_reports)
        return max(elapsed, default=0)

    @property
    def throughput_mdesc_s(self) -> float:
        """Aggregate processing rate: all nodes run concurrently."""
        elapsed = self.elapsed_ps
        if elapsed <= 0:
            return 0.0
        return self.cluster_totals()["completed"] * 1e6 / elapsed

    @property
    def load_imbalance(self) -> float:
        """Busiest alive node's completed load over the mean (0.0 when idle)."""
        loads = [node.completed for node in self.nodes.values()]
        total = sum(loads)
        if total <= 0 or not loads:
            return 0.0
        return max(loads) * len(loads) / total

    def imbalance_report(self, threshold: float = 1.25) -> dict:
        """Observed load versus the ring's expected share, per alive node.

        A node is flagged *overloaded* when its observed share of completed
        descriptors exceeds ``threshold`` times its expected arc share —
        the signal that traffic is skewed (or the ring needs more vnodes).
        """
        if threshold <= 1.0:
            raise ValueError("threshold must exceed 1.0")
        totals = self.alive_totals()["completed"]
        shares = self.ring.arc_shares()
        rows = []
        overloaded = []
        for node_id in sorted(self.nodes):
            node = self.nodes[node_id]
            observed = node.completed / totals if totals else 0.0
            expected = shares.get(node_id, 0.0)
            flagged = bool(totals) and expected > 0.0 and observed > threshold * expected
            if flagged:
                overloaded.append(node_id)
            rows.append(
                {
                    "node": node_id,
                    "completed": node.completed,
                    "observed_share": round(observed, 4),
                    "expected_share": round(expected, 4),
                    "overloaded": flagged,
                }
            )
        return {
            "rows": rows,
            "load_imbalance": self.load_imbalance,
            "overloaded": overloaded,
            "imbalance_detected": bool(overloaded),
            "threshold": threshold,
        }

    # ------------------------------------------------------------------ #
    # Cluster-wide telemetry
    # ------------------------------------------------------------------ #

    def merged_telemetry(self, include_departed: bool = True) -> TelemetryPipeline:
        """The fleet-level measurement plane: all per-node pipelines merged.

        Builds a fresh pipeline from the shared config/seed and folds in
        every alive node's sketches, plus graceful leavers' retained
        pipelines (``include_departed``).  Failed nodes contributed nothing
        — their sketches died with them; ``telemetry_packets_lost`` says
        how much of the stream the merged view is therefore missing.
        """
        if not self.telemetry_enabled:
            raise RuntimeError("cluster was built with telemetry disabled")
        merged = TelemetryPipeline(self.telemetry_config, seed=self.telemetry_seed)
        for node in self.nodes.values():
            merged.merge(node.pipeline)
        if include_departed:
            for pipeline in self._retired_pipelines:
                merged.merge(pipeline)
        return merged

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    def report(self) -> dict:
        return {
            "nodes": sorted(self.nodes),
            "shards_per_node": self.shards_per_node,
            "ingested": self.ingested,
            "alive_totals": self.alive_totals(),
            "cluster_totals": self.cluster_totals(),
            "active_flows": self.active_flows,
            "throughput_mdesc_s": self.throughput_mdesc_s,
            "load_imbalance": self.load_imbalance,
            "flows_migrated": self.flows_migrated,
            "flows_lost": self.flows_lost,
            "telemetry_packets_lost": self.telemetry_packets_lost,
            "joins": self.joins,
            "leaves": self.leaves,
            "failures": self.failures,
            "routed": dict(self.routed),
            "events": list(self.events),
            "per_node": [
                self.nodes[node_id].report() for node_id in sorted(self.nodes)
            ],
            "retired": list(self._retired_reports),
            "ring": self.ring.stats(),
        }

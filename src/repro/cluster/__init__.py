"""Cluster simulation layer: the scale-out tier above the sharded engine.

PR 2 scaled one box (shards inside :class:`~repro.engine.ShardedFlowLUT`);
this package simulates the fleet a production NetFlow-style deployment runs:

* :mod:`repro.cluster.ring` — :class:`HashRing`, consistent hashing with
  virtual nodes over CRC-32 so membership changes remap only ``~1/N`` of
  the flow keyspace.
* :mod:`repro.cluster.node` — :class:`ClusterNode`, one sharded engine plus
  a mergeable telemetry pipeline and per-shard flow state behind a ring
  identity, with live-flow extract/absorb hooks for migration.
* :mod:`repro.cluster.coordinator` — :class:`ClusterCoordinator`, batched
  ring-steered ingestion, node join/leave/failure with flow-state migration
  and explicit loss accounting, load-imbalance detection, and
  :meth:`~ClusterCoordinator.merged_telemetry` for the fleet-wide
  heavy-hitter / superspreader view.
* :mod:`repro.cluster.replica` — :class:`ReplicaStore`, the passive
  flow-record copies behind k>=2 ring replication
  (``ClusterCoordinator(replication=2)``), promoted on ``fail_node`` so
  failover is lossless for replicated keys; checkpoint-based warm restarts
  (``checkpoint_interval=...``) are the lighter-weight alternative, built
  on :mod:`repro.persist`.
* :mod:`repro.cluster.control` — :class:`ClusterControl`, the closed
  control loop over the coordinator's windowed signals:
  :class:`RebalancePolicy` (flow pins + vnode weight shifts under a
  hysteresis band) and :class:`AutoscalePolicy` (elastic ``add_node`` /
  graceful ``remove_node``), turning the static fleet into the elastic
  system the roadmap describes.
"""

from repro.cluster.control import (
    AutoscalePolicy,
    ClusterControl,
    ControlAction,
    RebalancePolicy,
)
from repro.cluster.coordinator import ClusterCoordinator
from repro.cluster.node import ClusterNode
from repro.cluster.replica import ReplicaStore
from repro.cluster.ring import DEFAULT_VNODES, HashRing

__all__ = [
    "AutoscalePolicy",
    "ClusterControl",
    "ClusterCoordinator",
    "ClusterNode",
    "ControlAction",
    "DEFAULT_VNODES",
    "HashRing",
    "ReplicaStore",
]

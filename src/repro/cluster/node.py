"""One measurement node of the simulated cluster.

A :class:`ClusterNode` is what one rack slot runs: a
:class:`~repro.engine.sharded.ShardedFlowLUT` (one or more timed Flow LUT
devices) with per-shard flow state attached, and — unless disabled — a
:class:`~repro.telemetry.TelemetryPipeline` riding the merged outcome
batches so the node summarises its slice of the traffic in mergeable
sketches.  The coordinator steers descriptor batches to nodes via the hash
ring and, on membership changes, moves live flow state between nodes with
:meth:`extract_flows` / :meth:`absorb_flows`.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.replica import ReplicaStore
from repro.core.config import FlowLUTConfig
from repro.core.flow_lut import LookupOutcome
from repro.core.flow_state import FlowRecord
from repro.engine.sharded import ShardedFlowLUT
from repro.obs.metrics import MetricsRegistry
from repro.obs.plane import Observability
from repro.sim.rng import SeedLike
from repro.telemetry.pipeline import TelemetryConfig, TelemetryPipeline


class ClusterNode:
    """A sharded engine plus telemetry plane behind one node identity.

    Parameters
    ----------
    node_id: the node's ring identity (stable across the node's life).
    config: per-shard Flow LUT configuration.
    shards: Flow LUT devices inside this node (the PR-2 scale-up axis; the
        cluster is the scale-out axis on top of it).
    telemetry: build a per-node telemetry pipeline fed by the engine's
        outcome batches.  All nodes of a cluster share ``telemetry_config``
        and ``telemetry_seed`` so their pipelines are mergeable.
    flow_timeout_us: housekeeping timeout for the per-shard flow state.
    obs: a shared :class:`~repro.obs.plane.Observability` (or bare
        :class:`~repro.obs.metrics.MetricsRegistry`): the node labels
        every engine metric with its ``node_id`` and counts its own
        migration traffic (``repro_node_flows_moved_total``).  ``None``
        disables instrumentation.
    """

    def __init__(
        self,
        node_id: str,
        config: Optional[FlowLUTConfig] = None,
        shards: int = 1,
        telemetry: bool = True,
        telemetry_config: Optional[TelemetryConfig] = None,
        telemetry_seed: SeedLike = 0,
        flow_timeout_us: Optional[float] = None,
        input_queue_depth: int = 32,
        obs: Optional[object] = None,
    ) -> None:
        if not node_id:
            raise ValueError("node_id must be non-empty")
        self.node_id = node_id
        self.telemetry_config = telemetry_config
        self.telemetry_seed = telemetry_seed
        metrics: Optional[MetricsRegistry]
        spans = None
        if isinstance(obs, Observability):
            metrics = obs.metrics
            spans = obs.spans
        elif obs is None or isinstance(obs, MetricsRegistry):
            metrics = obs
        else:
            raise TypeError(
                "obs must be an Observability, MetricsRegistry or None, "
                f"not {type(obs).__name__}"
            )
        self.obs = metrics
        if metrics is not None:
            moved = metrics.counter(
                "repro_node_flows_moved_total",
                "Flow records migrated or restored per node and direction",
                labels=("node", "direction"),
            )
            self._obs_moved = {
                direction: moved.labels(node=node_id, direction=direction)
                for direction in ("in", "out", "restored")
            }
        self.pipeline: Optional[TelemetryPipeline] = (
            TelemetryPipeline(telemetry_config, seed=telemetry_seed) if telemetry else None
        )
        # Replication plane (populated only when the coordinator runs with
        # k >= 2): passive copies of flows this node backs up, and one
        # telemetry pipeline per primary whose packets it mirrors, so a
        # failed primary's sketch state can be reassembled exactly.
        self.replica_flows = ReplicaStore()
        self.backup_pipelines: Dict[str, TelemetryPipeline] = {}
        # The engine inherits the plane's span recorder (its batch spans
        # nest under the coordinator's node span) but never its windowed
        # registry: the coordinator ingests node-major, so only it knows a
        # time-ordered watermark — it advances the windows once per
        # ingest segment instead.
        self.engine = ShardedFlowLUT(
            shards=shards,
            config=config,
            on_batch=self.pipeline.observe_outcomes if self.pipeline is not None else None,
            input_queue_depth=input_queue_depth,
            obs=metrics,
            obs_labels={"node": node_id} if metrics is not None else None,
            windows=False,
            spans=spans,
        )
        self.engine.attach_flow_state(timeout_us=flow_timeout_us)
        self.alive = True
        self.flows_migrated_in = 0
        self.flows_migrated_out = 0
        self.flows_restored_in = 0

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #

    def process_batch(self, descriptors: Sequence) -> List[LookupOutcome]:
        """Run one descriptor batch through this node's engine."""
        if not self.alive:
            raise RuntimeError(f"node {self.node_id!r} has failed; cannot ingest")
        return self.engine.process_batch(descriptors)

    def set_span_recorder(self, spans) -> object:
        """Swap the engine's span recorder (see
        :meth:`ShardedFlowLUT.set_span_recorder
        <repro.engine.sharded.ShardedFlowLUT.set_span_recorder>`); the
        parallel executor uses this to give each worker a private recorder."""
        return self.engine.set_span_recorder(spans)

    def preload(self, keys) -> int:
        return self.engine.preload(keys)

    def run_housekeeping(
        self,
        now_ps: Optional[int] = None,
        expired_out: Optional[List[Tuple[bytes, FlowRecord]]] = None,
    ) -> int:
        """One aging pass; expired flows also feed the flow-size sketches.

        On the analyzer path the pipeline hears ``FLOW_EXPIRED`` events;
        the engine path has no event engine, so the expired records are
        picked out of each shard's export stream here and sized exactly
        once — migration uses :meth:`~repro.core.flow_state.FlowStateTable.
        detach`, which does not export, so moved flows never appear.
        ``expired_out`` collects the expired ``(key_bytes, record)`` pairs
        (the coordinator purges replica copies with them).
        """
        if self.pipeline is None:
            return self.engine.run_housekeeping(now_ps, expired_out)
        watermarks = [
            len(shard.flow_state.exported) if shard.flow_state is not None else 0
            for shard in self.engine.shards
        ]
        removed = self.engine.run_housekeeping(now_ps, expired_out)
        for shard, mark in zip(self.engine.shards, watermarks):
            state = shard.flow_state
            if state is None:
                continue
            for record in state.exported[mark:]:
                self.pipeline.flow_sizes.observe_flow(record.packets, record.bytes)
        return removed

    def drain_exported(self) -> List[FlowRecord]:
        """Drain this node's export stream (see the engine-level hook)."""
        return self.engine.drain_exported()

    def finalize_telemetry(self) -> int:
        """Close the measurement window: size the flows still live here.

        Mirrors :meth:`~repro.telemetry.TelemetryPipeline.finalize` on the
        analyzer path; together with the expiry accounting in
        :meth:`run_housekeeping` every flow is sized exactly once.  Returns
        the number of records added (0 with telemetry disabled).
        """
        if self.pipeline is None:
            return 0
        added = 0
        for state in self.engine.flow_states:
            if state is not None:
                added += self.pipeline.finalize(state)
        return added

    # ------------------------------------------------------------------ #
    # Flow-state migration
    # ------------------------------------------------------------------ #

    def live_records(self) -> List[FlowRecord]:
        """Snapshot of every live flow record on this node."""
        return list(self.engine.flow_records())

    @property
    def active_flows(self) -> int:
        return self.engine.active_flows

    def extract_flows(
        self, predicate: Optional[Callable[[bytes, FlowRecord], bool]] = None
    ) -> List[Tuple[bytes, FlowRecord]]:
        """Remove and return live flows matching ``predicate`` (all if None).

        Yields ``(key_bytes, record)`` pairs where ``key_bytes`` is the
        *engine* key the flow table stored (the descriptor extractor's field
        packing — the same bytes the ring steers on), so the caller can
        re-home each flow on the ring owner of exactly that identity.  The
        records are detached (not exported — the flows are moving, not
        terminating) and their table entries deleted, so this node stops
        claiming them; the caller re-homes them with :meth:`absorb_flows`
        on the new owner.
        """
        extracted: List[Tuple[bytes, FlowRecord]] = []
        for shard in self.engine.shards:
            state = shard.flow_state
            if state is None:
                continue
            victims = []
            for record in state:
                key_bytes = shard.live_key(record.flow_id)
                if key_bytes is None:
                    continue  # record without a table entry cannot migrate
                if predicate is None or predicate(key_bytes, record):
                    victims.append((key_bytes, record))
            for key_bytes, record in victims:
                state.detach(record.flow_id)
                shard.delete_flow(key_bytes)
                extracted.append((key_bytes, record))
        if extracted:
            self.flows_migrated_out += len(extracted)
            if self.obs is not None:
                self._obs_moved["out"].inc(len(extracted))
            self.engine.drain()  # retire the deletion writes before handoff
        return extracted

    def absorb_flows(self, flows: Sequence[Tuple[bytes, FlowRecord]]) -> Tuple[int, int]:
        """Adopt migrated ``(key_bytes, record)`` pairs; returns ``(restored, failed)``.

        A flow fails only when the table cannot place its key (overflow);
        the coordinator accounts those flows as lost.
        """
        restored = 0
        failed = 0
        for key_bytes, record in flows:
            if self.engine.restore_flow(record, key_bytes):
                restored += 1
            else:
                failed += 1
        self.flows_migrated_in += restored
        if restored and self.obs is not None:
            self._obs_moved["in"].inc(restored)
        return restored, failed

    def restore_flow(self, key_bytes: bytes, record: FlowRecord) -> bool:
        """Adopt one flow recovered from a checkpoint or replica promotion.

        Like :meth:`absorb_flows` but accounted separately — a restore is
        recovery of state that was about to be lost, not a migration.
        Returns ``False`` when the table cannot place the key.
        """
        if self.engine.restore_flow(record, key_bytes):
            self.flows_restored_in += 1
            if self.obs is not None:
                self._obs_moved["restored"].inc()
            return True
        return False

    # ------------------------------------------------------------------ #
    # Replication (backup role)
    # ------------------------------------------------------------------ #

    def replicate(self, primary_id: str, outcomes: Sequence[LookupOutcome]) -> int:
        """Mirror a primary's outcome batch into this node's backup plane.

        Flow-record copies land in :attr:`replica_flows` (only outcomes
        that produced a flow ID — see :meth:`ReplicaStore.observe_outcome
        <repro.cluster.replica.ReplicaStore.observe_outcome>`), and, with
        telemetry enabled, every outcome also feeds a per-primary backup
        pipeline so the primary's sketches can be reassembled exactly
        after a failure.  Returns the number of outcomes mirrored.
        """
        if not self.alive:
            raise RuntimeError(f"node {self.node_id!r} has failed; cannot replicate")
        for outcome in outcomes:
            self.replica_flows.observe_outcome(outcome)
        if self.pipeline is not None and outcomes:
            self.backup_pipeline(primary_id).observe_outcomes(outcomes)
        return len(outcomes)

    def backup_pipeline(self, primary_id: str) -> TelemetryPipeline:
        """The (lazily created) backup pipeline mirroring ``primary_id``.

        All backup pipelines share the cluster's telemetry config/seed, so
        the segments scattered across backups merge exactly into the
        primary's measurement plane on promotion.
        """
        backup = self.backup_pipelines.get(primary_id)
        if backup is None:
            backup = TelemetryPipeline(self.telemetry_config, seed=self.telemetry_seed)
            self.backup_pipelines[primary_id] = backup
        return backup

    @property
    def replica_memory_bytes(self) -> int:
        """Provisioned bytes of the backup plane (the replication
        overhead the durability experiment charges against k=2)."""
        pipelines = sum(p.memory_bytes for p in self.backup_pipelines.values())
        return self.replica_flows.memory_bytes + pipelines

    def fail(self) -> int:
        """Mark the node failed; returns the live flows lost with it.

        A failed node takes its flow state *and* its telemetry sketches
        down — nothing is migrated.  The engine object is kept so the
        coordinator can still report what the node had completed before
        dying, but it accepts no further traffic.
        """
        self.alive = False
        return self.active_flows

    # ------------------------------------------------------------------ #
    # Accounting
    # ------------------------------------------------------------------ #

    @property
    def completed(self) -> int:
        return self.engine.completed

    @property
    def hits(self) -> int:
        return self.engine.hits

    @property
    def misses(self) -> int:
        return self.engine.misses

    @property
    def new_flows(self) -> int:
        return self.engine.new_flows

    @property
    def insert_failures(self) -> int:
        return self.engine.insert_failures

    @property
    def elapsed_ps(self) -> int:
        return self.engine.elapsed_ps

    def totals(self) -> dict:
        """The outcome accounting the cluster books balance over."""
        return {
            "completed": self.completed,
            "hits": self.hits,
            "misses": self.misses,
            "new_flows": self.new_flows,
        }

    def flow_state_books(self) -> dict:
        """Record-instance accounting summed across this node's shards.

        The cluster's conservation identity (every record instance is
        created once and retired once) is balanced over these figures plus
        the coordinator's lost/restored counters.
        """
        books = {"created": 0, "expired": 0, "adopted": 0, "folded": 0, "exported": 0}
        for state in self.engine.flow_states:
            if state is None:
                continue
            books["created"] += state.created
            books["expired"] += state.expired
            books["adopted"] += state.adopted
            books["folded"] += state.folded
            # Records handed to a NetFlow exporter are still retired
            # records; exported_total keeps the identity balanced.
            books["exported"] += state.exported_total
        return books

    def report(self) -> dict:
        report = {
            "node_id": self.node_id,
            "alive": self.alive,
            "shards": self.engine.num_shards,
            "active_flows": self.active_flows,
            "flows_migrated_in": self.flows_migrated_in,
            "flows_migrated_out": self.flows_migrated_out,
            "flows_restored_in": self.flows_restored_in,
            "insert_failures": self.insert_failures,
            "throughput_mdesc_s": self.engine.throughput_mdesc_s,
            **self.totals(),
        }
        if self.pipeline is not None:
            report["telemetry_packets"] = self.pipeline.packets
        if len(self.replica_flows) or self.backup_pipelines:
            report["replica"] = self.replica_flows.stats()
            report["backup_pipelines"] = len(self.backup_pipelines)
            report["replica_memory_bytes"] = self.replica_memory_bytes
        return report

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "failed"
        return f"ClusterNode({self.node_id!r}, {state}, completed={self.completed})"

"""The cluster's closed control loop: adaptive rebalancing and autoscaling.

PR 8 gave the fleet eyes — tumbling windows over the simulated clock and
watchdog rules that fire at a hotspot's onset window — but nothing *acted*
on what they saw: the fleet stayed static, however skewed the traffic.
This module closes the loop.  A :class:`ClusterControl` rides a
:class:`~repro.cluster.coordinator.ClusterCoordinator`'s windowed registry
and, between ingest segments, lets two policies act on the windows that
closed since the last step:

:class:`RebalancePolicy`
    Restores per-node load balance inside a fixed fleet.  The signal is the
    **windowed** load imbalance (busiest node's window load over the mean —
    the time-resolved figure, because a lifetime average dilutes a mid-run
    hotspot into invisibility).  The lever depends on the diagnosis:

    * *Traffic skew* — the hot node's observed share far exceeds its ring
      arc share, i.e. a few elephant flows concentrate the stream.  Weight
      changes cannot split a single key's traffic, so the policy pins the
      hot flows (by per-flow window deltas) onto the least-loaded nodes:
      :meth:`ClusterCoordinator.pin_flows` migrates their live state and
      overrides the ring for subsequent packets.
    * *Ring unevenness* — the hot node is simply serving too large an arc.
      The policy shifts vnode weight (:meth:`ClusterCoordinator.
      set_node_weight`), shrinking the hot node's arcs or growing the
      coldest node's, and the placement reconciliation migrates exactly
      the flows whose arcs moved.

    Acting is gated by a hysteresis band (engage above ``engage``, keep
    correcting until below ``release``), a ``for_windows`` streak, a
    ``cooldown_windows`` refractory period, and a ``min_window_packets``
    floor — windows too small to judge never trigger migrations.

:class:`AutoscalePolicy`
    Changes the fleet size.  Sustained per-node load above the provisioning
    target adds a member (:meth:`ClusterCoordinator.add_node` — live flows
    in the new arcs follow automatically); sustained load far below it
    retires the least-loaded member gracefully (:meth:`ClusterCoordinator.
    remove_node` — flows and undrained exports hand over, nothing is
    lost).  The same streak/cooldown gates prevent flapping, and
    ``min_nodes``/``max_nodes`` bound the fleet.

Both policies reuse the membership/migration machinery that PRs 3–4
correctness-locked, so every action preserves the conservation identity
``created == live + exported + folded + lost`` and the merged top-k —
``tests/test_control.py`` holds a policy-driven run bit-identical to the
static fleet on those figures.

The loop is deliberately **pulled**, not pushed: window closes only queue
snapshots, and :meth:`ClusterControl.step` — called by the driver between
ingest segments — applies actions.  Acting inside the ``on_close``
callback would mutate membership in the middle of an ingest segment's
barrier, under the very iteration that is crediting the window.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.obs.windows import WindowSnapshot

OUTCOMES_METRIC = "repro_engine_outcomes_total"


def window_node_loads(window: WindowSnapshot, node_ids) -> Dict[str, float]:
    """Per-node completed descriptors (hit + miss deltas) in one window.

    Nodes in ``node_ids`` absent from the window's series read 0.0; series
    entries for departed nodes are ignored.  This counter is maintained
    under every executor (engines credit it inline; the process barrier
    reconciles it), which is what makes it the control loop's load signal.
    """
    loads: Dict[str, float] = {node_id: 0.0 for node_id in node_ids}
    for result in ("hit", "miss"):
        grouped = window.values(
            OUTCOMES_METRIC, where={"result": result}, group_by="node"
        )
        for node_id, value in grouped.items():
            if node_id in loads:
                loads[node_id] += value
    return loads


def window_imbalance(loads: Dict[str, float]) -> float:
    """Busiest node's window load over the mean (0.0 for an idle window)."""
    total = sum(loads.values())
    if total <= 0 or not loads:
        return 0.0
    return max(loads.values()) * len(loads) / total


@dataclass(frozen=True)
class RebalancePolicy:
    """Knobs of the in-fleet rebalancing lever.

    The hysteresis band straddles the scenario library's calibration (see
    :func:`~repro.obs.alerts.default_cluster_rules`): steady-state
    ``zipf_mix`` sits at a windowed imbalance <= 1.7 on a 5-node ring while
    the ``hotspot_shift`` second half exceeds 2.0, so ``engage = 1.8``
    separates them with margin and the policy stays quiet on healthy skew.
    Once engaged it keeps correcting until the imbalance drops below
    ``release`` — a single threshold would either act on steady state or
    stall just above it.
    """

    engage: float = 1.8
    release: float = 1.45
    for_windows: int = 1
    cooldown_windows: int = 1
    min_window_packets: int = 256
    # A flow is "hot" when its window delta exceeds this share of the
    # window's total traffic; the skew diagnosis pins such flows.
    hot_flow_share: float = 0.02
    max_pins_per_action: int = 16
    # The unevenness diagnosis shifts this much vnode weight per action,
    # bounded to [min_weight, max_weight].
    weight_step: int = 1
    min_weight: int = 1
    max_weight: int = 4
    # Observed share > skew_ratio x expected arc share reads as traffic
    # skew (pin flows); below it as ring unevenness (shift weight).
    skew_ratio: float = 1.5

    def __post_init__(self) -> None:
        if not self.engage > self.release > 1.0:
            raise ValueError("need engage > release > 1.0 (a hysteresis band)")
        if self.for_windows < 1 or self.cooldown_windows < 0:
            raise ValueError("for_windows must be >= 1 and cooldown_windows >= 0")
        if self.min_window_packets < 0:
            raise ValueError("min_window_packets must be non-negative")
        if not 0.0 < self.hot_flow_share < 1.0:
            raise ValueError("hot_flow_share must be in (0, 1)")
        if self.max_pins_per_action < 1:
            raise ValueError("max_pins_per_action must be >= 1")
        if not 1 <= self.min_weight <= self.max_weight:
            raise ValueError("need 1 <= min_weight <= max_weight")
        if self.weight_step < 1:
            raise ValueError("weight_step must be >= 1")
        if self.skew_ratio <= 1.0:
            raise ValueError("skew_ratio must exceed 1.0")


@dataclass(frozen=True)
class AutoscalePolicy:
    """Knobs of the fleet-size lever.

    ``target_node_packets`` is the provisioning target: the per-node window
    load the operator sized a member for.  There is no universal default —
    it is the one knob that encodes capacity — so it is required.  The
    up/down ratios form the do-nothing band: mean load above ``target x
    scale_up_ratio`` for ``for_windows`` consecutive windows grows the
    fleet, below ``target x scale_down_ratio`` shrinks it; the wide gap
    between the ratios (not a symmetric band) is what keeps a just-added
    node from being retired the moment the load per node drops.
    """

    target_node_packets: float
    scale_up_ratio: float = 1.25
    scale_down_ratio: float = 0.35
    for_windows: int = 2
    cooldown_windows: int = 2
    min_nodes: int = 2
    max_nodes: int = 16
    node_prefix: str = "auto"

    def __post_init__(self) -> None:
        if self.target_node_packets <= 0:
            raise ValueError("target_node_packets must be positive")
        if not 0.0 < self.scale_down_ratio < 1.0 <= self.scale_up_ratio:
            raise ValueError("need 0 < scale_down_ratio < 1.0 <= scale_up_ratio")
        if self.for_windows < 1 or self.cooldown_windows < 0:
            raise ValueError("for_windows must be >= 1 and cooldown_windows >= 0")
        if not 1 <= self.min_nodes <= self.max_nodes:
            raise ValueError("need 1 <= min_nodes <= max_nodes")
        if not self.node_prefix:
            raise ValueError("node_prefix must be non-empty")


@dataclass(frozen=True)
class ControlAction:
    """One action the control loop took, tagged with its trigger window."""

    kind: str  # "pin" | "reweight" | "add_node" | "remove_node"
    window: int
    detail: Dict[str, object] = field(default_factory=dict)

    def as_dict(self) -> dict:
        return asdict(self)


class ClusterControl:
    """Drives the policies from a coordinator's windowed registry.

    Construction subscribes to window closes (snapshots are queued, never
    acted on inline); the driver calls :meth:`step` between ingest segments
    to apply whatever the closed windows call for.  Requires the
    coordinator's obs plane to carry a windowed registry — the whole point
    is reacting to *windowed* signals, not lifetime averages.
    """

    def __init__(
        self,
        coordinator,
        rebalance: Optional[RebalancePolicy] = None,
        autoscale: Optional[AutoscalePolicy] = None,
    ) -> None:
        if rebalance is None and autoscale is None:
            raise ValueError("at least one policy (rebalance/autoscale) is required")
        obs = coordinator.obs
        if obs is None or obs.windows is None:
            raise RuntimeError(
                "the control loop needs windowed obs: build the coordinator "
                "with an Observability carrying window_ps="
            )
        self.coordinator = coordinator
        self.rebalance = rebalance
        self.autoscale = autoscale
        self.windows = obs.windows
        self._pending: List[WindowSnapshot] = []
        self.windows.on_close(self._queue_window)
        self.actions: List[ControlAction] = []
        self.windows_seen = 0
        self.flows_moved = 0
        self.flows_lost = 0
        # Per-flow cumulative packet marks (key -> packets at last step):
        # one global dict, because a flow has exactly one owner cluster-wide
        # and keeps its cumulative count across migrations — per-node marks
        # would go stale the moment the policy moved a flow.
        self._flow_marks: Dict[bytes, int] = {}
        self._flow_deltas: Dict[bytes, float] = {}
        # Rebalance hysteresis state.
        self._rebalance_streak = 0
        self._rebalance_engaged = False
        self._rebalance_cooldown = 0
        # Autoscale streak/cooldown state.
        self._up_streak = 0
        self._down_streak = 0
        self._autoscale_cooldown = 0
        self._auto_index = 0
        self._obs_actions = obs.metrics.counter(
            "repro_control_actions_total",
            "Control-loop actions applied, by kind",
            labels=("kind",),
        )

    # -- window intake -------------------------------------------------------

    def _queue_window(self, window: WindowSnapshot) -> None:
        # Snapshots queue at close and are consumed by step(): acting here
        # would change membership inside the ingest barrier that is still
        # crediting this very window.
        self._pending.append(window)

    # -- the loop ------------------------------------------------------------

    def step(self) -> List[ControlAction]:
        """Evaluate every window closed since the last step; apply actions.

        Windows are processed in close order so streaks and cooldowns see
        each one.  Per window, the autoscaler gets first claim — a fleet
        that is simply under- or over-provisioned should change size, not
        shuffle flows — and a membership change invalidates that window's
        load shape, so rebalancing skips it.  Returns the actions applied
        by this call (also appended to :attr:`actions`).
        """
        taken: List[ControlAction] = []
        pending, self._pending = self._pending, []
        for window in pending:
            self.windows_seen += 1
            if self.rebalance is not None:
                self._refresh_flow_deltas()
            action: Optional[ControlAction] = None
            if self.autoscale is not None:
                action = self._autoscale_step(window)
            if action is None and self.rebalance is not None:
                action = self._rebalance_step(window)
            if action is not None:
                taken.append(action)
        return taken

    def _record(self, action: ControlAction) -> ControlAction:
        self.actions.append(action)
        migrated = action.detail.get("migrated")
        if isinstance(migrated, int):
            self.flows_moved += migrated
        lost = action.detail.get("lost")
        if isinstance(lost, int):
            self.flows_lost += lost
        self._obs_actions.inc(kind=action.kind)
        return action

    # -- flow-level signal ---------------------------------------------------

    def _refresh_flow_deltas(self) -> Dict[bytes, float]:
        """Per-flow packet deltas since the previous step, fleet-wide.

        Reads every live flow's cumulative packet count and diffs it
        against the global marks (clamped at 0: a flow that expired and
        re-learned restarts its count).  Marks for flows no longer live
        are dropped so the dict tracks the live set, not history.
        """
        marks: Dict[bytes, int] = {}
        deltas: Dict[bytes, float] = {}
        for node in self.coordinator.nodes.values():
            for key_bytes, record in node.engine.live_flow_pairs():
                if record is None:
                    continue
                marks[key_bytes] = record.packets
                deltas[key_bytes] = float(
                    max(record.packets - self._flow_marks.get(key_bytes, 0), 0)
                )
        self._flow_marks = marks
        self._flow_deltas = deltas
        return deltas

    # -- autoscaling ---------------------------------------------------------

    def _autoscale_step(self, window: WindowSnapshot) -> Optional[ControlAction]:
        policy = self.autoscale
        if self._autoscale_cooldown > 0:
            self._autoscale_cooldown -= 1
            return None
        loads = window_node_loads(window, self.coordinator.nodes)
        total = sum(loads.values())
        if total <= 0:
            # Windows crossed in one advance close empty; an empty window
            # says nothing about provisioning, so it neither feeds nor
            # resets the streaks.
            return None
        mean = total / len(loads)
        if mean > policy.target_node_packets * policy.scale_up_ratio:
            self._up_streak += 1
            self._down_streak = 0
            if self._up_streak >= policy.for_windows and len(loads) < policy.max_nodes:
                return self._scale_up(window, mean)
        elif mean < policy.target_node_packets * policy.scale_down_ratio:
            self._down_streak += 1
            self._up_streak = 0
            if self._down_streak >= policy.for_windows and len(loads) > policy.min_nodes:
                return self._scale_down(window, loads, mean)
        else:
            self._up_streak = 0
            self._down_streak = 0
        return None

    def _scale_up(self, window: WindowSnapshot, mean: float) -> ControlAction:
        policy = self.autoscale
        node_id = f"{policy.node_prefix}{self._auto_index}"
        while node_id in self.coordinator.nodes:
            self._auto_index += 1
            node_id = f"{policy.node_prefix}{self._auto_index}"
        self._auto_index += 1
        event = self.coordinator.add_node(node_id)
        self._up_streak = 0
        self._autoscale_cooldown = policy.cooldown_windows
        return self._record(
            ControlAction(
                kind="add_node",
                window=window.index,
                detail={**event, "mean_node_packets": mean},
            )
        )

    def _scale_down(
        self, window: WindowSnapshot, loads: Dict[str, float], mean: float
    ) -> ControlAction:
        policy = self.autoscale
        victim = min(loads, key=lambda node_id: (loads[node_id], node_id))
        event = self.coordinator.remove_node(victim)
        self._down_streak = 0
        self._autoscale_cooldown = policy.cooldown_windows
        return self._record(
            ControlAction(
                kind="remove_node",
                window=window.index,
                detail={**event, "mean_node_packets": mean},
            )
        )

    # -- rebalancing ---------------------------------------------------------

    def _rebalance_step(self, window: WindowSnapshot) -> Optional[ControlAction]:
        policy = self.rebalance
        loads = window_node_loads(window, self.coordinator.nodes)
        total = sum(loads.values())
        if total < policy.min_window_packets or len(loads) < 2:
            return None
        imbalance = window_imbalance(loads)
        if imbalance <= policy.release:
            # Below the release line the fleet is balanced: disengage and
            # re-arm.  This is the hysteresis exit — between release and
            # engage an engaged policy keeps correcting, a disengaged one
            # stays quiet.
            self._rebalance_engaged = False
            self._rebalance_streak = 0
            return None
        if not self._rebalance_engaged:
            if imbalance > policy.engage:
                self._rebalance_streak += 1
                if self._rebalance_streak >= policy.for_windows:
                    self._rebalance_engaged = True
            else:
                self._rebalance_streak = 0
        if not self._rebalance_engaged:
            return None
        if self._rebalance_cooldown > 0:
            self._rebalance_cooldown -= 1
            return None
        hot_id = max(loads, key=lambda node_id: (loads[node_id], node_id))
        expected = self.coordinator.ring.arc_shares().get(hot_id, 0.0)
        observed = loads[hot_id] / total
        action: Optional[ControlAction] = None
        if expected > 0.0 and observed > policy.skew_ratio * expected:
            action = self._pin_hot_flows(window, hot_id, loads)
        if action is None:
            action = self._shift_weight(window, hot_id, loads)
        if action is not None:
            self._rebalance_cooldown = policy.cooldown_windows
        return action

    def _pin_hot_flows(
        self, window: WindowSnapshot, hot_id: str, loads: Dict[str, float]
    ) -> Optional[ControlAction]:
        """Shed the hot node's excess by pinning its hottest flows away.

        Candidates are the hot node's live flows whose window delta exceeds
        ``hot_flow_share`` of the window total, hottest first; each is
        assigned to the currently least-loaded other node (greedy, tracking
        the running loads) until the excess over the mean is shed or the
        per-action pin budget runs out.  Returns ``None`` when no flow
        qualifies — the skew then isn't a few elephants, and the weight
        lever takes over.
        """
        policy = self.rebalance
        total = sum(loads.values())
        mean = total / len(loads)
        floor = policy.hot_flow_share * total
        candidates: List[Tuple[float, bytes]] = []
        node = self.coordinator.nodes[hot_id]
        for key_bytes, record in node.engine.live_flow_pairs():
            if record is None:
                continue
            delta = self._flow_deltas.get(key_bytes, 0.0)
            if delta >= floor:
                candidates.append((delta, key_bytes))
        if not candidates:
            return None
        candidates.sort(key=lambda pair: (-pair[0], pair[1]))
        excess = loads[hot_id] - mean
        running = dict(loads)
        assignments: Dict[bytes, str] = {}
        for delta, key_bytes in candidates:
            if len(assignments) >= policy.max_pins_per_action or excess <= 0:
                break
            target = min(
                (node_id for node_id in running if node_id != hot_id),
                key=lambda node_id: (running[node_id], node_id),
            )
            assignments[key_bytes] = target
            running[target] += delta
            running[hot_id] -= delta
            excess -= delta
        if not assignments:
            return None
        event = self.coordinator.pin_flows(assignments)
        return self._record(
            ControlAction(
                kind="pin",
                window=window.index,
                detail={**event, "node": hot_id},
            )
        )

    def _shift_weight(
        self, window: WindowSnapshot, hot_id: str, loads: Dict[str, float]
    ) -> Optional[ControlAction]:
        """Shed diffuse overload by shifting vnode weight off the hot node.

        Prefers shrinking the hot node's weight (its arcs spill to ring
        successors); at the weight floor it grows the coldest node instead.
        Returns ``None`` when both ends are pinned at their bounds — the
        ring is as balanced as the weight budget allows.
        """
        policy = self.rebalance
        weights = self.coordinator.ring.weights
        if weights[hot_id] - policy.weight_step >= policy.min_weight:
            event = self.coordinator.set_node_weight(
                hot_id, weights[hot_id] - policy.weight_step
            )
        else:
            cold_id = min(loads, key=lambda node_id: (loads[node_id], node_id))
            if (
                cold_id == hot_id
                or weights[cold_id] + policy.weight_step > policy.max_weight
            ):
                return None
            event = self.coordinator.set_node_weight(
                cold_id, weights[cold_id] + policy.weight_step
            )
        return self._record(
            ControlAction(kind="reweight", window=window.index, detail=dict(event))
        )

    # -- reporting -----------------------------------------------------------

    def report(self) -> dict:
        counts: Dict[str, int] = {}
        for action in self.actions:
            counts[action.kind] = counts.get(action.kind, 0) + 1
        report = {
            "windows_seen": self.windows_seen,
            "actions": [action.as_dict() for action in self.actions],
            "action_counts": counts,
            "flows_moved": self.flows_moved,
            "flows_lost": self.flows_lost,
            "pinned_flows": len(self.coordinator.pins),
            "weights": self.coordinator.ring.weights,
        }
        if self.rebalance is not None:
            report["rebalance"] = {
                **asdict(self.rebalance),
                "engaged": self._rebalance_engaged,
                "streak": self._rebalance_streak,
                "cooldown": self._rebalance_cooldown,
            }
        if self.autoscale is not None:
            report["autoscale"] = {
                **asdict(self.autoscale),
                "up_streak": self._up_streak,
                "down_streak": self._down_streak,
                "cooldown": self._autoscale_cooldown,
            }
        return report

"""Vectorised column-level hashing (CRC-32 and H3) over packed key columns.

The per-object hot path hashes one key at a time; this module hashes a whole
*column* — ``count`` fixed-width keys packed contiguously — in one pass:

* :func:`crc32_column` runs the table-driven CRC byte recurrence over the
  key-length dimension (13 steps for a 5-tuple column, each a whole-column
  gather), instead of per key.
* :class:`H3ColumnHasher` folds an H3 matrix into per-byte-position gather
  tables (``T[p][b]`` = XOR of the rows selected by byte value ``b`` at byte
  position ``p``), so a column hash is ``width`` table gathers XOR-reduced.

Both reproduce the scalar functions (:data:`repro.hashing.crc.CRC32`,
:class:`repro.hashing.h3.H3Hash`) bit-for-bit — the property tests in
``tests/test_columns.py`` hold them to that across seeds and geometries.
Without numpy (see :mod:`repro.columns.backend`) every function falls back
to a stdlib per-key loop with identical results.
"""

from __future__ import annotations

from typing import List, Sequence, Union

from repro.columns import backend
from repro.hashing.crc import CRC32, CRCHash
from repro.hashing.h3 import H3Hash

ByteColumn = Union[bytes, bytearray, memoryview]


def _numpy_crc_table(crc: CRCHash, np):
    table = getattr(crc, "_column_gather_table", None)
    if table is None:
        table = np.array(crc.remainder_table, dtype=np.uint32)
        crc._column_gather_table = table
    return table


def crc32_column(key_data: ByteColumn, count: int, width: int, crc: CRCHash = CRC32):
    """CRC of every fixed-width key in a packed column, in one pass.

    ``key_data`` holds ``count`` keys of ``width`` bytes back to back.
    Returns a sequence of ``count`` hash values equal to ``crc.hash`` of
    each key (a ``numpy.uint32`` array on the numpy backend, a list
    otherwise).  Only reflected 32-bit CRCs vectorise this way.
    """
    if not (crc.reflected and crc.width == 32):
        raise ValueError("column hashing supports reflected 32-bit CRCs only")
    if len(key_data) != count * width:
        raise ValueError(
            f"key column holds {len(key_data)} bytes, expected {count}x{width}"
        )
    np = backend.np
    if np is not None:
        arr = np.frombuffer(bytes(key_data), dtype=np.uint8).reshape(count, width)
        remainder = np.full(count, crc.initial & 0xFFFFFFFF, dtype=np.uint32)
        table = _numpy_crc_table(crc, np)
        for position in range(width):
            remainder = (remainder >> np.uint32(8)) ^ table[
                (remainder ^ arr[:, position]) & np.uint32(0xFF)
            ]
        return remainder ^ np.uint32(crc.final_xor & 0xFFFFFFFF)
    view = memoryview(key_data)
    hash_one = crc.hash
    return [hash_one(view[index * width : (index + 1) * width]) for index in range(count)]


class H3ColumnHasher:
    """One H3 function compiled into byte-position gather tables.

    The scalar :class:`~repro.hashing.h3.H3Hash` XORs one matrix row per set
    key *bit*; grouping rows eight at a time gives a 256-entry table per key
    *byte*, so hashing becomes ``width`` gathers regardless of how many bits
    are set.  Building the tables costs ``width x 8 x 256`` XORs once per
    hash function — amortised over every block the table serves.

    Parameters
    ----------
    h3: the hash function to compile (its ``key_bits`` must cover the keys).
    width: key width in bytes of the columns this hasher will see.
    """

    def __init__(self, h3: H3Hash, width: int) -> None:
        if width <= 0:
            raise ValueError("width must be positive")
        if 8 * width > h3.key_bits:
            raise ValueError(
                f"{width}-byte keys exceed the hash function's {h3.key_bits} key bits"
            )
        self.width = width
        self.output_bits = h3.output_bits
        rows = h3.matrix
        tables: List[List[int]] = []
        # Byte position p counts from the LSB end of the big-endian key, so
        # byte p of the key integer is key_bytes[width - 1 - p] and covers
        # matrix rows 8p .. 8p+7.
        for position in range(width):
            table = [0] * 256
            for bit in range(8):
                row = rows[8 * position + bit]
                bit_mask = 1 << bit
                for byte in range(256):
                    if byte & bit_mask:
                        table[byte] ^= row
            tables.append(table)
        self._tables = tables
        self._np_tables = None

    def _numpy_tables(self, np):
        if self._np_tables is None:
            self._np_tables = [np.array(table, dtype=np.uint64) for table in self._tables]
        return self._np_tables

    def hash_column(self, key_data: ByteColumn, count: int):
        """Hash every key of a packed column; equals ``h3.hash`` per key."""
        width = self.width
        if len(key_data) != count * width:
            raise ValueError(
                f"key column holds {len(key_data)} bytes, expected {count}x{width}"
            )
        np = backend.np
        if np is not None and self.output_bits <= 64:
            arr = np.frombuffer(bytes(key_data), dtype=np.uint8).reshape(count, width)
            tables = self._numpy_tables(np)
            out = np.zeros(count, dtype=np.uint64)
            for position in range(width):
                out ^= tables[position][arr[:, width - 1 - position]]
            return out
        view = memoryview(key_data)
        tables = self._tables
        out_list: List[int] = []
        for index in range(count):
            key = view[index * width : (index + 1) * width]
            value = 0
            for position in range(width):
                value ^= tables[position][key[width - 1 - position]]
            out_list.append(value)
        return out_list


def crc32_partition(
    key_data: ByteColumn, count: int, width: int, buckets: int
) -> List[Sequence[int]]:
    """Row indices per bucket of ``CRC32(key) % buckets``, column-at-a-time.

    This is the sharded engine's steering function vectorised: bucket ``b``
    receives exactly the rows whose key satisfies
    ``ShardedFlowLUT.shard_of(key) == b``, with the original row order kept
    inside each bucket.
    """
    if buckets <= 0:
        raise ValueError("buckets must be positive")
    if buckets == 1:
        return [range(count)]
    np = backend.np
    hashes = crc32_column(key_data, count, width)
    if np is not None:
        owners = hashes % np.uint32(buckets)
        return [np.nonzero(owners == np.uint32(bucket))[0] for bucket in range(buckets)]
    groups: List[List[int]] = [[] for _ in range(buckets)]
    for index, value in enumerate(hashes):
        groups[value % buckets].append(index)
    return groups

"""Columnar batch structures: :class:`DescriptorBlock` and :class:`OutcomeBlock`.

A :class:`DescriptorBlock` is the columnar twin of a ``List[PacketDescriptor]``:
one contiguous ``bytes`` buffer of packed engine keys plus parallel columns for
lengths, timestamps and TCP flags::

    key_data   : | dst_ip | src_ip | dst_port | src_port | proto | ...  (13 B x N)
    lengths    : int64  x N
    timestamps : int64  x N   (picoseconds)
    flags      : uint16 x N

Keys use the engine layout — the 5-tuple field order of
:data:`repro.net.parser.FIVE_TUPLE` — which is exactly what
``PacketDescriptor.key_bytes`` holds, so block rows hash and probe
byte-identically to the object path.  The :meth:`DescriptorBlock.packed_keys`
view reorders bytes into the :meth:`repro.net.fivetuple.FlowKey.pack` layout
that telemetry counters key on.

Columns are numpy arrays when numpy is available and stdlib ``array.array``
otherwise (see :mod:`repro.columns.backend`); both expose ``tolist`` and
integer indexing, and block equality compares logical content so the two
backends interconvert freely.

An :class:`OutcomeBlock` carries the Flow LUT's bulk-probe results for one
block in the same columnar shape (flow ids, hit/new-flow flags, lookup
stage codes, submit/complete times) and materialises per-object
:class:`~repro.core.flow_lut.LookupOutcome` rows only on demand.
"""

from __future__ import annotations

import struct
from array import array
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.columns import backend
from repro.core.hash_cam import LookupStage
from repro.net.fivetuple import FLOW_KEY_BYTES, FlowKey
from repro.net.parser import PacketDescriptor

ENGINE_KEY_WIDTH = FLOW_KEY_BYTES
"""Bytes per key in the engine layout (13 for the IPv4 5-tuple)."""

_ENGINE_STRUCT = struct.Struct(">IIHHB")
"""Engine key layout: dst_ip, src_ip, dst_port, src_port, protocol."""

_PACK_ORDER = (4, 5, 6, 7, 0, 1, 2, 3, 10, 11, 8, 9, 12)
"""Byte permutation from the engine layout to ``FlowKey.pack()`` order."""

STAGES: Tuple[LookupStage, ...] = (
    LookupStage.CAM,
    LookupStage.MEM1,
    LookupStage.MEM2,
    LookupStage.MISS,
)
"""Stage-code table: ``STAGES[code]`` is the stage an outcome column stores."""

STAGE_CODES = {stage: code for code, stage in enumerate(STAGES)}


def _engine_key(key: FlowKey) -> bytes:
    return _ENGINE_STRUCT.pack(key.dst_ip, key.src_ip, key.dst_port, key.src_port, key.protocol)


def _column(values: Sequence[int], typecode: str, dtype: str):
    np = backend.np
    if np is not None:
        return np.array(values, dtype=dtype)
    return array(typecode, values)


def _tolist(column) -> List[int]:
    if hasattr(column, "tolist"):
        return column.tolist()
    return list(column)


class DescriptorBlock:
    """``count`` packet descriptors stored column-wise (see module docstring)."""

    __slots__ = ("key_data", "key_width", "lengths", "timestamps", "flags", "_flow_key_cache")

    def __init__(self, key_data: bytes, lengths, timestamps, flags, key_width: int = ENGINE_KEY_WIDTH) -> None:
        if key_width <= 0:
            raise ValueError("key_width must be positive")
        if len(key_data) % key_width:
            raise ValueError(f"key column of {len(key_data)} bytes is not a multiple of width {key_width}")
        count = len(key_data) // key_width
        for name, column in (("lengths", lengths), ("timestamps", timestamps), ("flags", flags)):
            if len(column) != count:
                raise ValueError(f"{name} column has {len(column)} rows, key column has {count}")
        self.key_data = bytes(key_data)
        self.key_width = key_width
        self.lengths = lengths
        self.timestamps = timestamps
        self.flags = flags
        self._flow_key_cache: Optional[List[FlowKey]] = None

    # ------------------------------------------------------------------ build
    @classmethod
    def from_rows(cls, rows: Iterable[Tuple[FlowKey, int, int, int]]) -> "DescriptorBlock":
        """Build from ``(flow_key, length_bytes, timestamp_ps, tcp_flags)`` rows."""
        chunks: List[bytes] = []
        lengths: List[int] = []
        timestamps: List[int] = []
        flags: List[int] = []
        for key, length, timestamp, tcp_flags in rows:
            chunks.append(_engine_key(key))
            lengths.append(length)
            timestamps.append(timestamp)
            flags.append(tcp_flags)
        return cls(
            b"".join(chunks),
            _column(lengths, "q", "int64"),
            _column(timestamps, "q", "int64"),
            _column(flags, "H", "uint16"),
        )

    @classmethod
    def from_descriptors(cls, descriptors: Sequence[PacketDescriptor]) -> "DescriptorBlock":
        """Build from object-path descriptors (must use the 5-tuple key layout)."""
        chunks: List[bytes] = []
        lengths: List[int] = []
        timestamps: List[int] = []
        flags: List[int] = []
        for descriptor in descriptors:
            packed = _engine_key(descriptor.key)
            if packed != descriptor.key_bytes:
                raise ValueError(
                    "DescriptorBlock requires the standard 5-tuple key layout "
                    f"(got key_bytes {descriptor.key_bytes!r} for {descriptor.key})"
                )
            chunks.append(packed)
            lengths.append(descriptor.length_bytes)
            timestamps.append(descriptor.timestamp_ps)
            flags.append(descriptor.tcp_flags)
        return cls(
            b"".join(chunks),
            _column(lengths, "q", "int64"),
            _column(timestamps, "q", "int64"),
            _column(flags, "H", "uint16"),
        )

    @classmethod
    def from_packets(cls, packets: Sequence, bidirectional: bool = False) -> "DescriptorBlock":
        """Build straight from parsed packets, skipping descriptor objects."""
        return cls.from_rows(
            (
                packet.key.bidirectional() if bidirectional else packet.key,
                packet.length_bytes,
                packet.timestamp_ps,
                packet.tcp_flags,
            )
            for packet in packets
        )

    # ------------------------------------------------------------------ views
    def __len__(self) -> int:
        return len(self.key_data) // self.key_width

    def keys(self) -> List[bytes]:
        """Per-row engine key bytes (the probe/hash input)."""
        width = self.key_width
        data = self.key_data
        return [data[i * width : (i + 1) * width] for i in range(len(self))]

    def flow_keys(self) -> List[FlowKey]:
        """Per-row :class:`FlowKey` objects (cached; built on first use)."""
        if self._flow_key_cache is None:
            unpack = _ENGINE_STRUCT.unpack
            width = self.key_width
            data = self.key_data
            keys = []
            for i in range(len(self)):
                dst_ip, src_ip, dst_port, src_port, protocol = unpack(
                    data[i * width : (i + 1) * width]
                )
                keys.append(
                    FlowKey(
                        src_ip=src_ip,
                        dst_ip=dst_ip,
                        src_port=src_port,
                        dst_port=dst_port,
                        protocol=protocol,
                    )
                )
            self._flow_key_cache = keys
        return self._flow_key_cache

    def packed_keys(self) -> List[bytes]:
        """Per-row keys in ``FlowKey.pack()`` byte order (telemetry's keying)."""
        width = self.key_width
        if width != ENGINE_KEY_WIDTH:
            return [key.pack() for key in self.flow_keys()]
        np = backend.np
        if np is not None and len(self):
            arr = np.frombuffer(self.key_data, dtype=np.uint8).reshape(len(self), width)
            packed = arr[:, list(_PACK_ORDER)].tobytes()
            return [packed[i * width : (i + 1) * width] for i in range(len(self))]
        data = self.key_data
        out = []
        for i in range(len(self)):
            row = data[i * width : (i + 1) * width]
            out.append(bytes(row[p] for p in _PACK_ORDER))
        return out

    def _field_column(self, offset: int, size: int) -> List[int]:
        np = backend.np
        count = len(self)
        width = self.key_width
        if np is not None and count:
            arr = np.frombuffer(self.key_data, dtype=np.uint8).reshape(count, width)
            view = np.ascontiguousarray(arr[:, offset : offset + size])
            if size == 1:
                return view[:, 0].tolist()
            return view.view(np.dtype(f">u{size}"))[:, 0].tolist()
        data = self.key_data
        return [
            int.from_bytes(data[i * width + offset : i * width + offset + size], "big")
            for i in range(count)
        ]

    def dst_ips(self) -> List[int]:
        return self._field_column(0, 4)

    def src_ips(self) -> List[int]:
        return self._field_column(4, 4)

    def dst_ports(self) -> List[int]:
        return self._field_column(8, 2)

    def src_ports(self) -> List[int]:
        return self._field_column(10, 2)

    def protocols(self) -> List[int]:
        return self._field_column(12, 1)

    def to_descriptors(self) -> List[PacketDescriptor]:
        """Materialise the object-path representation of every row."""
        keys = self.flow_keys()
        key_bytes = self.keys()
        lengths = _tolist(self.lengths)
        timestamps = _tolist(self.timestamps)
        flags = _tolist(self.flags)
        return [
            PacketDescriptor(
                key_bytes=key_bytes[i],
                key=keys[i],
                length_bytes=lengths[i],
                timestamp_ps=timestamps[i],
                tcp_flags=flags[i],
            )
            for i in range(len(self))
        ]

    def take(self, indices) -> "DescriptorBlock":
        """A new block holding the given rows, in the given order."""
        np = backend.np
        width = self.key_width
        count = len(self)
        if np is not None:
            idx = np.asarray(indices, dtype=np.int64)
            arr = np.frombuffer(self.key_data, dtype=np.uint8).reshape(count, width)
            return DescriptorBlock(
                arr[idx].tobytes(),
                np.asarray(self.lengths, dtype=np.int64)[idx],
                np.asarray(self.timestamps, dtype=np.int64)[idx],
                np.asarray(self.flags, dtype=np.uint16)[idx],
                key_width=width,
            )
        idx_list = list(indices)
        data = self.key_data
        return DescriptorBlock(
            b"".join(data[i * width : (i + 1) * width] for i in idx_list),
            array("q", (self.lengths[i] for i in idx_list)),
            array("q", (self.timestamps[i] for i in idx_list)),
            array("H", (self.flags[i] for i in idx_list)),
            key_width=width,
        )

    def slice_rows(self, start: int, stop: int) -> "DescriptorBlock":
        """A new block holding the contiguous row range ``[start, stop)``.

        The cheap special case of :meth:`take` for the sub-batch loops that
        walk a block front to back (per-node workers in
        :mod:`repro.parallel` take every row exactly once, in order): plain
        slicing on every column — no index array, no gather — with numpy
        slices staying views of the parent columns.  ``stop`` is clamped to
        the block length like ordinary slicing.
        """
        count = len(self)
        start = max(0, int(start))
        stop = min(int(stop), count)
        if start == 0 and stop == count:
            return self
        width = self.key_width
        return DescriptorBlock(
            self.key_data[start * width : stop * width],
            self.lengths[start:stop],
            self.timestamps[start:stop],
            self.flags[start:stop],
            key_width=width,
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, DescriptorBlock):
            return NotImplemented
        return (
            self.key_width == other.key_width
            and self.key_data == other.key_data
            and _tolist(self.lengths) == _tolist(other.lengths)
            and _tolist(self.timestamps) == _tolist(other.timestamps)
            and _tolist(self.flags) == _tolist(other.flags)
        )

    def __repr__(self) -> str:
        return f"DescriptorBlock(count={len(self)}, key_width={self.key_width})"


class OutcomeBlock:
    """Bulk-probe results for one :class:`DescriptorBlock`, column-wise.

    ``flow_ids`` uses ``-1`` for "no flow id" and ``first_paths`` uses ``-1``
    for "no first-path preference"; ``stages`` stores codes into
    :data:`STAGES`.  ``to_outcomes`` materialises the per-object
    :class:`~repro.core.flow_lut.LookupOutcome` list when a consumer (e.g.
    the replication path) genuinely needs objects.
    """

    __slots__ = ("block", "flow_ids", "hits", "new_flows", "stages", "first_paths", "submit_ps", "complete_ps")

    def __init__(self, block, flow_ids, hits, new_flows, stages, first_paths, submit_ps, complete_ps) -> None:
        count = len(block)
        for name, column in (
            ("flow_ids", flow_ids),
            ("hits", hits),
            ("new_flows", new_flows),
            ("stages", stages),
            ("first_paths", first_paths),
            ("submit_ps", submit_ps),
            ("complete_ps", complete_ps),
        ):
            if len(column) != count:
                raise ValueError(f"{name} column has {len(column)} rows, block has {count}")
        self.block = block
        self.flow_ids = flow_ids
        self.hits = hits
        self.new_flows = new_flows
        self.stages = stages
        self.first_paths = first_paths
        self.submit_ps = submit_ps
        self.complete_ps = complete_ps

    def __len__(self) -> int:
        return len(self.block)

    @classmethod
    def merge_scatter(
        cls, block, parts: Sequence[Tuple[Sequence[int], "OutcomeBlock"]]
    ) -> "OutcomeBlock":
        """Assemble a full-block outcome from per-partition outcomes.

        ``parts`` pairs each partition's original row indices with its
        outcome block; together the index sets must cover every row once.
        """
        np = backend.np
        count = len(block)
        if np is not None:
            flow_ids = np.full(count, -1, dtype=np.int64)
            hits = np.zeros(count, dtype=np.uint8)
            new_flows = np.zeros(count, dtype=np.uint8)
            stages = np.zeros(count, dtype=np.uint8)
            first_paths = np.full(count, -1, dtype=np.int8)
            submit_ps = np.zeros(count, dtype=np.int64)
            complete_ps = np.zeros(count, dtype=np.int64)
            for indices, part in parts:
                idx = np.asarray(indices, dtype=np.int64)
                flow_ids[idx] = np.asarray(part.flow_ids, dtype=np.int64)
                hits[idx] = np.asarray(part.hits, dtype=np.uint8)
                new_flows[idx] = np.asarray(part.new_flows, dtype=np.uint8)
                stages[idx] = np.asarray(part.stages, dtype=np.uint8)
                first_paths[idx] = np.asarray(part.first_paths, dtype=np.int8)
                submit_ps[idx] = np.asarray(part.submit_ps, dtype=np.int64)
                complete_ps[idx] = np.asarray(part.complete_ps, dtype=np.int64)
        else:
            flow_ids = array("q", [0]) * count
            hits = bytearray(count)
            new_flows = bytearray(count)
            stages = bytearray(count)
            first_paths = array("b", [0]) * count
            submit_ps = array("q", [0]) * count
            complete_ps = array("q", [0]) * count
            for indices, part in parts:
                for row_in, row_out in enumerate(indices):
                    flow_ids[row_out] = part.flow_ids[row_in]
                    hits[row_out] = part.hits[row_in]
                    new_flows[row_out] = part.new_flows[row_in]
                    stages[row_out] = part.stages[row_in]
                    first_paths[row_out] = part.first_paths[row_in]
                    submit_ps[row_out] = part.submit_ps[row_in]
                    complete_ps[row_out] = part.complete_ps[row_in]
        return cls(block, flow_ids, hits, new_flows, stages, first_paths, submit_ps, complete_ps)

    def to_outcomes(self) -> list:
        """Materialise :class:`LookupOutcome` objects for every row, in order."""
        from repro.core.flow_lut import LookupOutcome

        descriptors = self.block.to_descriptors()
        flow_ids = _tolist(self.flow_ids)
        first_paths = _tolist(self.first_paths)
        submit_ps = _tolist(self.submit_ps)
        complete_ps = _tolist(self.complete_ps)
        return [
            LookupOutcome(
                descriptor=descriptors[i],
                flow_id=None if flow_ids[i] < 0 else flow_ids[i],
                hit=bool(self.hits[i]),
                new_flow=bool(self.new_flows[i]),
                stage=STAGES[self.stages[i]],
                first_path=None if first_paths[i] < 0 else first_paths[i],
                submit_ps=submit_ps[i],
                complete_ps=complete_ps[i],
            )
            for i in range(len(self))
        ]

"""Columnar batch hot path.

``repro.columns`` stores a batch of packet descriptors as *columns* — one
contiguous buffer of packed keys plus parallel arrays for lengths,
timestamps and flags — so hashing, shard steering and ring lookup run over
whole columns at once instead of per object.  The per-object descriptor
path remains the reference implementation; the equivalence batteries in
``tests/test_columns.py`` pin the two paths to identical results.
"""

from repro.columns.backend import HAVE_NUMPY, using_numpy
from repro.columns.block import (
    ENGINE_KEY_WIDTH,
    STAGE_CODES,
    STAGES,
    DescriptorBlock,
    OutcomeBlock,
)
from repro.columns.hashing import H3ColumnHasher, crc32_column, crc32_partition

__all__ = [
    "HAVE_NUMPY",
    "using_numpy",
    "ENGINE_KEY_WIDTH",
    "STAGES",
    "STAGE_CODES",
    "DescriptorBlock",
    "OutcomeBlock",
    "H3ColumnHasher",
    "crc32_column",
    "crc32_partition",
]

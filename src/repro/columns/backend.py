"""Array backend selection for the columnar batch path.

The columnar structures run on two backends:

* **numpy** — whole-column vector arithmetic (the fast path);
* **stdlib** — ``array.array`` / ``memoryview`` loops, so the package works
  on any Python installation with no third-party dependency at all.

The backend is chosen once at import: numpy is used when importable unless
``REPRO_NO_NUMPY`` is set in the environment (the CI fallback leg sets it to
prove the stdlib path stays green).  Code that branches per call reads
``backend.np`` at runtime rather than caching it, so tests can also
monkeypatch ``np``/``HAVE_NUMPY`` to exercise the fallback in-process.
"""

from __future__ import annotations

import os

if os.environ.get("REPRO_NO_NUMPY"):
    np = None
else:
    try:
        import numpy as np  # type: ignore[no-redef]
    except ImportError:  # pragma: no cover - depends on the environment
        np = None

HAVE_NUMPY = np is not None


def using_numpy() -> bool:
    """Whether the vectorised numpy backend is active right now."""
    return np is not None

"""Related-work baseline micro-benchmarks.

These quantify the trade-offs the paper's related-work section argues about:
lost insertions for single-hash versus multi-choice tables, cuckoo hashing's
non-deterministic insertion cost, Bloom-filter false positives, and the pure
software throughput of the functional structures (pytest-benchmark timings).
"""

import pytest

from repro.baselines import (
    BloomFilter,
    CuckooHashTable,
    DLeftHashTable,
    SingleHashTable,
)
from repro.core.config import small_test_config
from repro.core.hash_cam import HashCamTable
from repro.reporting import format_table
from repro.traffic.generators import random_flow_keys

KEYS = [key.pack() for key in random_flow_keys(8000, seed=77)]
LOAD_KEYS = KEYS[:6000]  # ~73% load on the 8192-entry structures below


def test_baseline_overflow_comparison(benchmark, bench_emit):
    """Lost insertions at equal capacity and load: single hash vs d-left vs
    the paper's two-choice + CAM table."""

    def run():
        single = SingleHashTable(buckets=4096, bucket_entries=2, seed=1)
        dleft = DLeftHashTable(buckets_per_table=2048, choices=2, bucket_entries=2, seed=1)
        hashcam = HashCamTable(small_test_config(num_flows=8192, cam_entries=64))
        rows = []
        for name, table in (("single_hash", single), ("d_left", dleft)):
            lost = sum(0 if table.insert(key) else 1 for key in LOAD_KEYS)
            rows.append({"structure": name, "lost_insertions": lost})
        lost = sum(0 if hashcam.insert(key).inserted else 1 for key in LOAD_KEYS)
        rows.append({"structure": "hash_cam (paper)", "lost_insertions": lost})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Baselines — lost insertions at ~73% load, 8192 entries"))
    print("(the paper's table fills the home bucket first to keep hit lookups at one"
          " DRAM read, so at high load it loses more insertions than pure d-left but"
          " far fewer than a single-hash table)")
    by_name = {row["structure"]: row["lost_insertions"] for row in rows}
    assert by_name["hash_cam (paper)"] < by_name["single_hash"]
    assert by_name["d_left"] < by_name["single_hash"]
    benchmark.extra_info["rows"] = rows
    bench_emit("baselines", {
        "single_hash_lost_insertions": by_name["single_hash"],
        "d_left_lost_insertions": by_name["d_left"],
        "hash_cam_lost_insertions": by_name["hash_cam (paper)"],
    })


def test_baseline_single_hash_insert_throughput(benchmark, bench_emit):
    def populate():
        table = SingleHashTable(buckets=8192, bucket_entries=2, seed=2)
        for key in LOAD_KEYS:
            table.insert(key)
        return table

    table = benchmark(populate)
    assert table.entries > 0
    if benchmark.stats:
        bench_emit("baselines", {"single_hash_insert_mean_s": benchmark.stats.stats.mean})


def test_baseline_dleft_insert_throughput(benchmark, bench_emit):
    def populate():
        table = DLeftHashTable(buckets_per_table=4096, choices=2, bucket_entries=2, seed=3)
        for key in LOAD_KEYS:
            table.insert(key)
        return table

    table = benchmark(populate)
    assert table.entries > 0
    if benchmark.stats:
        bench_emit("baselines", {"d_left_insert_mean_s": benchmark.stats.stats.mean})


def test_baseline_cuckoo_insert_throughput_and_kicks(benchmark, bench_emit):
    def populate():
        table = CuckooHashTable(slots_per_table=8192, seed=4)
        for key in LOAD_KEYS:
            table.insert(key)
        return table

    table = benchmark(populate)
    print(f"\ncuckoo: {table.total_kicks} kicks for {len(LOAD_KEYS)} insertions "
          f"(max chain {table.max_observed_kicks})")
    assert table.entries > 0
    results = {"cuckoo_total_kicks": table.total_kicks}
    if benchmark.stats:
        results["cuckoo_insert_mean_s"] = benchmark.stats.stats.mean
    bench_emit("baselines", results)


def test_baseline_hashcam_insert_throughput(benchmark, bench_emit):
    def populate():
        table = HashCamTable(small_test_config(num_flows=16384, cam_entries=64))
        for key in LOAD_KEYS:
            table.insert(key)
        return table

    table = benchmark(populate)
    assert len(table) > 0
    if benchmark.stats:
        bench_emit("baselines", {"hash_cam_insert_mean_s": benchmark.stats.stats.mean})


def test_baseline_hashcam_lookup_throughput(benchmark, bench_emit):
    table = HashCamTable(small_test_config(num_flows=16384, cam_entries=64))
    for key in LOAD_KEYS:
        table.insert(key)

    def lookup_all():
        hits = 0
        for key in LOAD_KEYS:
            if table.lookup(key).found:
                hits += 1
        return hits

    hits = benchmark(lookup_all)
    assert hits == len(LOAD_KEYS) - table.insert_failures
    if benchmark.stats:
        bench_emit("baselines", {"hash_cam_lookup_mean_s": benchmark.stats.stats.mean})


def test_baseline_bloom_false_positive_tradeoff(benchmark, bench_emit):
    """Bloom filter: false-positive rate versus bits per entry — the reason a
    Bloom filter alone cannot serve as the flow table."""

    def run():
        rows = []
        for bits_per_key in (4, 8, 16):
            bloom = BloomFilter(bits=bits_per_key * len(LOAD_KEYS), hash_count=4, seed=5)
            for key in LOAD_KEYS:
                bloom.insert(key)
            trials = KEYS[6000:8000]
            false_positives = sum(1 for key in trials if bloom.query(key))
            rows.append(
                {
                    "bits_per_key": bits_per_key,
                    "measured_fpr": false_positives / len(trials),
                    "predicted_fpr": bloom.expected_false_positive_rate(),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Baselines — Bloom filter false positives", float_digits=4))
    fprs = [row["measured_fpr"] for row in rows]
    assert fprs == sorted(fprs, reverse=True)
    benchmark.extra_info["rows"] = rows
    bench_emit("baselines", {
        f"bloom_{row['bits_per_key']}bpk_measured_fpr": row["measured_fpr"] for row in rows
    })

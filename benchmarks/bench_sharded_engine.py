"""Sharded engine — aggregate throughput scaling versus shard count.

No paper reference: this is the scale-out extension of the prototype.  Two
properties are checked.  First, aggregate (simulated) throughput scales with
the shard count on the realistic ``zipf_mix`` workload — at least 2x with 4
shards versus 1.  Second, sharding is *transparent*: for every named
scenario, the sharded engine's hit / miss / new-flow totals equal the
single-LUT per-packet path's, because flows are pinned to shards by key hash.

Set ``SHARDED_BENCH_PACKETS`` to shrink or grow the workload (CI smoke runs
use a small value).
"""

import os

from repro.engine import sharded_vs_single
from repro.reporting import format_table, run_sharded_scaling
from repro.traffic import list_scenarios

PACKETS = int(os.environ.get("SHARDED_BENCH_PACKETS", "4000"))
SHARD_COUNTS = (1, 2, 4, 8)


def test_sharded_throughput_scaling(benchmark):
    result = benchmark.pedantic(
        lambda: run_sharded_scaling(
            scenario="zipf_mix", packet_count=PACKETS, shard_counts=SHARD_COUNTS, seed=17
        ),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    print()
    print(format_table(rows, title=f"sharded scaling — zipf_mix ({PACKETS} packets)"))

    by_shards = {row["shards"]: row for row in rows}
    assert set(by_shards) == set(SHARD_COUNTS)

    # Outcome totals are invariant under sharding.
    for row in rows:
        assert row["matches_single_path"], row

    # Aggregate throughput rises monotonically with the shard count and
    # reaches at least 2x at 4 shards versus 1.
    rates = [by_shards[shards]["throughput_mdesc_s"] for shards in SHARD_COUNTS]
    assert rates == sorted(rates)
    assert by_shards[4]["throughput_mdesc_s"] >= 2.0 * by_shards[1]["throughput_mdesc_s"]
    benchmark.extra_info["rows"] = rows


def test_sharded_matches_single_path_on_every_scenario():
    packets = max(600, PACKETS // 4)
    rows = []
    for name in list_scenarios():
        comparison = sharded_vs_single(name, packets, shards=4, seed=23)
        sharded, single = comparison["sharded"], comparison["single"]
        rows.append(
            {
                "scenario": name,
                "hits": sharded.hits,
                "misses": sharded.misses,
                "new_flows": sharded.new_flows,
                "sharded_mdesc_s": round(sharded.throughput_mdesc_s, 2),
                "single_mdesc_s": round(single.throughput_mdesc_s, 2),
                "equivalent": comparison["equivalent"],
            }
        )
        assert comparison["equivalent"], (name, sharded.totals(), single.totals())
    print()
    print(format_table(rows, title=f"sharded vs single-LUT totals ({packets} packets each)"))

"""Sharded engine — aggregate throughput scaling versus shard count.

No paper reference: this is the scale-out extension of the prototype.  Two
properties are checked.  First, aggregate (simulated) throughput scales with
the shard count on the realistic ``zipf_mix`` workload — at least 2x with 4
shards versus 1.  Second, sharding is *transparent*: for every named
scenario, the sharded engine's hit / miss / new-flow totals equal the
single-LUT per-packet path's, because flows are pinned to shards by key hash.

Set ``SHARDED_BENCH_PACKETS`` to shrink or grow the workload (CI smoke runs
use a small value).
"""

import os

from repro.core.config import small_test_config
from repro.engine import ShardedFlowLUT, sharded_vs_single
from repro.obs import Observability, Stopwatch
from repro.reporting import format_table, run_sharded_scaling
from repro.traffic import list_scenarios, scenario_block, scenario_descriptors

PACKETS = int(os.environ.get("SHARDED_BENCH_PACKETS", "4000"))
SHARD_COUNTS = (1, 2, 4, 8)


def test_sharded_throughput_scaling(benchmark, bench_emit):
    result = benchmark.pedantic(
        lambda: run_sharded_scaling(
            scenario="zipf_mix", packet_count=PACKETS, shard_counts=SHARD_COUNTS, seed=17
        ),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    print()
    print(format_table(rows, title=f"sharded scaling — zipf_mix ({PACKETS} packets)"))

    by_shards = {row["shards"]: row for row in rows}
    assert set(by_shards) == set(SHARD_COUNTS)

    # Outcome totals are invariant under sharding.
    for row in rows:
        assert row["matches_single_path"], row

    # Aggregate throughput rises monotonically with the shard count and
    # reaches at least 2x at 4 shards versus 1.
    rates = [by_shards[shards]["throughput_mdesc_s"] for shards in SHARD_COUNTS]
    assert rates == sorted(rates)
    assert by_shards[4]["throughput_mdesc_s"] >= 2.0 * by_shards[1]["throughput_mdesc_s"]
    benchmark.extra_info["rows"] = rows
    bench_emit("sharded_engine", {
        f"shards_{shards}_mdesc_s": by_shards[shards]["throughput_mdesc_s"]
        for shards in SHARD_COUNTS
    })


def test_sharded_matches_single_path_on_every_scenario():
    packets = max(600, PACKETS // 4)
    rows = []
    for name in list_scenarios():
        comparison = sharded_vs_single(name, packets, shards=4, seed=23)
        sharded, single = comparison["sharded"], comparison["single"]
        rows.append(
            {
                "scenario": name,
                "hits": sharded.hits,
                "misses": sharded.misses,
                "new_flows": sharded.new_flows,
                "sharded_mdesc_s": round(sharded.throughput_mdesc_s, 2),
                "single_mdesc_s": round(single.throughput_mdesc_s, 2),
                "equivalent": comparison["equivalent"],
            }
        )
        assert comparison["equivalent"], (name, sharded.totals(), single.totals())
    print()
    print(format_table(rows, title=f"sharded vs single-LUT totals ({packets} packets each)"))


def test_columnar_ingest_speedup_gate(bench_emit):
    """Columnar hot-path acceptance: >= 3x faster host-side ingest.

    The same workload is driven through ``process_batch`` twice — once as
    descriptor lists (before), once as ``DescriptorBlock`` slices (after) —
    and the host wall clock is compared best-of-3.  Outcome totals must be
    identical; the per-path rates land in ``BENCH_sharded_engine.json`` next
    to the simulated-throughput trajectory.  (The per-shard-count breakdown
    lives in ``bench_columnar_hot_path.py`` / ``BENCH_columnar.json``.)
    """
    packets = max(800, PACKETS // 2)
    batch = 256
    descriptors = scenario_descriptors("zipf_mix", packets, seed=17)
    block = scenario_block("zipf_mix", packets, seed=17)

    def drive_objects():
        engine = ShardedFlowLUT(shards=4, config=small_test_config())
        watch = Stopwatch()
        for offset in range(0, packets, batch):
            engine.process_batch(descriptors[offset : offset + batch])
        return engine, watch.elapsed_s

    def drive_block():
        engine = ShardedFlowLUT(shards=4, config=small_test_config())
        watch = Stopwatch()
        for offset in range(0, packets, batch):
            engine.process_batch(block.take(range(offset, min(offset + batch, packets))))
        return engine, watch.elapsed_s

    # Interleaved pairs: drift across the window hits both paths alike.
    object_runs, block_runs = [], []
    for _ in range(3):
        object_runs.append(drive_objects())
        block_runs.append(drive_block())
    object_engine, object_wall = object_runs[0][0], min(w for _, w in object_runs)
    block_engine, block_wall = block_runs[0][0], min(w for _, w in block_runs)

    assert (block_engine.completed, block_engine.hits, block_engine.new_flows) == (
        object_engine.completed, object_engine.hits, object_engine.new_flows
    )
    speedup = object_wall / block_wall
    assert speedup >= 3.0, (object_wall, block_wall)

    object_rate = packets / object_wall / 1e6
    columnar_rate = packets / block_wall / 1e6
    print()
    print(format_table(
        [
            {
                "packets": packets,
                "object_mdesc_s": round(object_rate, 3),
                "columnar_mdesc_s": round(columnar_rate, 3),
                "speedup": round(speedup, 2),
            }
        ],
        title="columnar vs object host-side ingest — acceptance gate (4 shards)",
    ))
    bench_emit("sharded_engine", {
        "ingest_object_mdesc_s": round(object_rate, 4),
        "ingest_columnar_mdesc_s": round(columnar_rate, 4),
        "ingest_columnar_speedup": round(speedup, 2),
    })


def _drive(descriptors, obs, batch_size=256):
    """One sharded run over ``descriptors``; returns (engine, host wall s)."""
    engine = ShardedFlowLUT(shards=4, config=small_test_config(), obs=obs)
    watch = Stopwatch()
    for offset in range(0, len(descriptors), batch_size):
        engine.process_batch(descriptors[offset : offset + batch_size])
    return engine, watch.elapsed_s


def test_obs_instrumentation_overhead_smoke(bench_emit):
    """The observability overhead gate (ISSUE 6 + ISSUE 8 acceptance).

    Simulated throughput — the figure every benchmark reports — must be
    unchanged by instrumentation (the obs plane reads the host clock, not
    the simulated one), and the host-side wall-clock cost of the enabled
    path must stay small.  Since ISSUE 8 the instrumented twin runs the
    *full* time-resolved plane — metrics plus tumbling windows plus span
    tracing at the default 1-in-16 sampling — so the gate covers what a
    production run would actually enable.  Wall-clock is compared
    best-of-3 so a CI scheduler hiccup cannot flip the gate; the bound is
    deliberately loose (1.5x) because the acceptance threshold (<= 5%) is
    asserted on the simulated figure and the measured host ratio is
    *reported* in BENCH_sharded_engine.json where the trajectory can be
    watched.
    """
    packets = max(800, PACKETS // 2)
    descriptors = scenario_descriptors("zipf_mix", packets, seed=17)
    duration_ps = descriptors[-1].timestamp_ps - descriptors[0].timestamp_ps

    planes = [
        Observability(window_ps=max(1, duration_ps // 8), spans=True)
        for _ in range(3)
    ]

    runs = [_drive(descriptors, obs=None) for _ in range(3)]
    plain_engine, plain_wall = runs[0][0], min(wall for _, wall in runs)
    instrumented = [_drive(descriptors, obs=obs_plane) for obs_plane in planes]
    obs_engine, obs_wall = instrumented[0][0], min(wall for _, wall in instrumented)

    # Simulated results are bit-identical: same totals, same elapsed ps.
    assert obs_engine.completed == plain_engine.completed == packets
    assert (obs_engine.hits, obs_engine.misses, obs_engine.new_flows) == (
        plain_engine.hits, plain_engine.misses, plain_engine.new_flows
    )
    assert obs_engine.elapsed_ps == plain_engine.elapsed_ps
    ratio = obs_engine.throughput_mdesc_s / plain_engine.throughput_mdesc_s
    assert abs(ratio - 1.0) <= 0.05

    # Host-side cost of the instrumented twin stays bounded.
    wall_ratio = obs_wall / plain_wall if plain_wall > 0 else 1.0
    assert wall_ratio <= 1.5, (obs_wall, plain_wall)

    registry = obs_engine.obs
    stage_count = registry.histogram(
        "repro_engine_stage_ns",
        "Host-side duration of each batch stage (hash/steer/probe/drain/pack/telemetry)",
        labels=("stage",),
    )
    samples = {labels["stage"]: child.count for labels, child in stage_count.samples()}
    assert samples["steer"] == samples["probe"] == obs_engine.batches

    # The time-resolved layers actually ran: windows closed on the
    # simulated clock, spans were sampled at the default 1-in-16 rate.
    obs_plane = planes[0]
    obs_plane.flush_windows()
    windowed_total = sum(
        w.total("repro_engine_shard_descriptors_total")
        for w in obs_plane.windows.windows
    )
    assert windowed_total == float(obs_engine.completed)
    assert obs_plane.spans.roots_seen == obs_engine.batches
    expected_sampled = -(-obs_engine.batches // obs_plane.spans.sample_every)
    assert obs_plane.spans.roots_sampled == expected_sampled

    print()
    print(format_table(
        [
            {
                "packets": packets,
                "plain_wall_ms": round(plain_wall * 1e3, 1),
                "obs_wall_ms": round(obs_wall * 1e3, 1),
                "host_wall_ratio": round(wall_ratio, 3),
                "sim_throughput_ratio": round(ratio, 4),
            }
        ],
        title="observability overhead — instrumented vs plain sharded engine",
    ))
    bench_emit("sharded_engine", {
        "obs_host_wall_ratio": round(wall_ratio, 3),
        "obs_sim_throughput_ratio": round(ratio, 4),
    })

"""Telemetry scenario sweep — measurement-plane rate and sketch accuracy.

This benchmark has no paper reference table: it exercises the extension
workload suite (``repro.traffic.scenarios``) through the telemetry pipeline
and checks the properties the subsystem promises — sketches never
underestimate, heavy-hitter recall is high on skewed traffic, and each
adversarial scenario raises exactly the anomaly flag it was built to raise.

Set ``TELEMETRY_BENCH_PACKETS`` to shrink or grow the per-scenario packet
count (CI smoke runs use a small value).
"""

import os

from repro.reporting import format_table, run_telemetry_scenarios
from repro.traffic import list_scenarios

PACKETS = int(os.environ.get("TELEMETRY_BENCH_PACKETS", "8000"))


def test_telemetry_scenario_sweep(benchmark, bench_emit):
    result = benchmark.pedantic(
        lambda: run_telemetry_scenarios(packet_count=PACKETS, seed=11),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    print()
    print(format_table(rows, title=f"telemetry scenarios ({PACKETS} packets each)"))

    by_name = {row["scenario"]: row for row in rows}
    assert set(by_name) == set(list_scenarios())
    assert len(by_name) >= 5

    for row in rows:
        # The measurement plane must keep up and stay within its error model.
        assert row["kpps"] > 0.5
        assert row["cm_rel_err"] >= 0.0  # Count-Min never underestimates

    # Skewed traffic: the Space-Saving summary finds the real elephants.
    assert by_name["zipf_mix"]["hh_recall@10"] >= 0.8
    assert by_name["churn"]["hh_recall@10"] >= 0.7

    # Each adversarial scenario raises exactly its own flag.
    assert by_name["syn_flood"]["syn_flood"] and not by_name["syn_flood"]["port_scan"]
    assert by_name["port_scan"]["port_scan"] and not by_name["port_scan"]["syn_flood"]
    for benign in ("zipf_mix", "flash_crowd", "churn", "uniform_random"):
        assert not by_name[benign]["syn_flood"], benign
        assert not by_name[benign]["port_scan"], benign

    # Sketch memory is fixed; exact state grows with the flow count.
    assert len({row["sketch_kB"] for row in rows}) == 1
    benchmark.extra_info["rows"] = rows
    bench_emit("telemetry_scenarios", {
        f"{row['scenario']}_kpps": row["kpps"] for row in rows
    })
    bench_emit("telemetry_scenarios", {
        "zipf_mix_hh_recall_at_10": by_name["zipf_mix"]["hh_recall@10"],
        "churn_hh_recall_at_10": by_name["churn"]["hh_recall@10"],
    })

"""Section V-B — line-rate feasibility discussion.

Reproduces the arithmetic the paper uses to argue the design sustains 40 GbE
and beyond: the required packet rates at minimum frame size for standard and
worst-case inter-frame gaps, the measured Flow LUT rate at and below 50 %
miss, and the link speed the warm-table rate corresponds to.
"""

import pytest

from repro.reporting import format_table, run_linerate_feasibility, run_table2b_miss_rate


def test_linerate_feasibility_40gbe(benchmark, bench_emit):
    def run():
        table2b = run_table2b_miss_rate(table_entries=8000, query_count=2500, miss_rates=(0.5, 0.0))
        return run_linerate_feasibility(table2b=table2b)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(result["rows"], title="Section V-B — 40 GbE feasibility (measured vs paper)"))

    by_quantity = {row["quantity"]: row for row in result["rows"]}
    assert by_quantity["required Mpps at 40 GbE (12 B IPG)"]["measured"] == pytest.approx(59.52, abs=0.01)
    assert by_quantity["required Mpps at 40 GbE (1 B IPG)"]["measured"] == pytest.approx(68.49, abs=0.01)
    assert by_quantity["rate at <=50% miss (Mdesc/s)"]["measured"] > 59.52
    assert by_quantity["achievable Gbps at warm-table rate (72 B frames)"]["measured"] > 50.0
    benchmark.extra_info["rows"] = result["rows"]
    bench_emit("linerate_feasibility", {
        "rate_at_50pct_miss_mdesc_s": by_quantity["rate at <=50% miss (Mdesc/s)"]["measured"],
        "achievable_gbps_warm_table": by_quantity[
            "achievable Gbps at warm-table rate (72 B frames)"
        ]["measured"],
    })


def test_competitor_capacity_comparison(benchmark):
    """The Section V-B competitive positioning: entries and link speed."""
    from repro.baselines import SramHashCam
    from repro.core.config import PROTOTYPE_CONFIG
    from repro.reporting.paper import PAPER_COMPETITORS

    def run():
        sram = SramHashCam()
        rows = [
            {
                "design": "QDR-SRAM Hash-CAM (Yang 2012 [11])",
                "flow_entries": sram.capacity_entries,
                "note": f"{sram.config.sram.capacity_mbits} Mbit SRAM",
            }
        ]
        for competitor in PAPER_COMPETITORS:
            rows.append(
                {
                    "design": competitor["name"],
                    "flow_entries": competitor["flow_entries"],
                    "note": f"{competitor.get('link_gbps', '-')} Gbps" if "link_gbps" in competitor else competitor.get("note", ""),
                }
            )
        return rows

    rows = benchmark(run)
    print()
    print(format_table(rows, title="Flow-table capacity comparison (Section V-B)"))
    prototype = next(r for r in rows if "This work" in r["design"])
    sram_row = rows[0]
    assert prototype["flow_entries"] == PROTOTYPE_CONFIG.num_flows
    assert prototype["flow_entries"] >= 60 * sram_row["flow_entries"]

"""Parallel cluster ingestion — host-side scaling with exactness locked.

ISSUE 9 acceptance: with the thread executor and the numpy columnar
backend, aggregate host-side throughput grows with node count — at least
2x at 4 nodes versus 1 — while the parallel run's ``flow_books()`` and
merged top-k stay bit-identical to the sequential reference on every
scenario driven here.

*Aggregate host-side Mdesc/s* is ingested descriptors over the modeled
fleet-parallel critical path (serial steer + slowest node's measured
worker CPU time + serial barrier, per segment — see
``ClusterCoordinator.parallel_report``).  Worker busy time is per-thread
CPU time, so the figure reflects how the per-node work partitions rather
than how many cores this particular host happens to have; the raw wall
rate is reported alongside, ungated (on a single-core CI box wall cannot
scale, by construction).

Scaling rows run ``uniform_random`` — load-balanced steering, so the
slowest node's share actually shrinks with the fleet; exactness runs add
the skewed ``zipf_mix`` (and the equivalence matrix in
``tests/test_parallel.py`` covers the rest).  Set
``PARALLEL_BENCH_PACKETS`` to shrink the workload (CI smoke) and
``PARALLEL_BENCH_WORKERS`` to size the pool.
"""

import os

from repro.cluster import ClusterCoordinator
from repro.core.config import small_test_config
from repro.parallel import SequentialExecutor, ThreadExecutor
from repro.reporting import format_table
from repro.traffic import scenario_block

PACKETS = int(os.environ.get("PARALLEL_BENCH_PACKETS", "40000"))
WORKERS = int(os.environ.get("PARALLEL_BENCH_WORKERS", "4"))
NODE_COUNTS = (1, 2, 4)
SEGMENTS = 8
TOP_K = 10
# Below this workload, per-segment fixed costs (steer, dispatch, barrier)
# drown the per-node work and the 2x figure is meaningless; quick-mode CI
# smoke still checks that scaling goes the right way.
FULL_GATE_PACKETS = 24000


def _drive(scenario, nodes, executor, seed=77):
    block = scenario_block(scenario, PACKETS, seed=seed)
    cluster = ClusterCoordinator(
        nodes=nodes,
        config=small_test_config(),
        telemetry_seed=seed,
        executor=executor,
    )
    step = max(1, PACKETS // SEGMENTS)
    for offset in range(0, PACKETS, step):
        cluster.ingest(block.slice_rows(offset, offset + step))
    cluster.close()
    return cluster


def _top_k(cluster):
    merged = cluster.merged_telemetry()
    return [
        (hitter.key, hitter.count)
        for hitter in sorted(
            merged.heavy_hitters.entries(), key=lambda h: (-h.count, h.key)
        )[:TOP_K]
    ]


def test_parallel_thread_scaling(bench_emit):
    """Aggregate host-side Mdesc/s grows with node count (>= 2x at 4)."""
    rows = []
    rates = {}
    for nodes in NODE_COUNTS:
        cluster = _drive("uniform_random", nodes, ThreadExecutor(WORKERS))
        report = cluster.parallel_report()
        rates[nodes] = report["aggregate_mdesc_s"]
        busiest = max(report["per_node_busy_ns"].values())
        rows.append(
            {
                "nodes": nodes,
                "agg_mdesc_s": round(report["aggregate_mdesc_s"], 4),
                "wall_mdesc_s": round(report["wall_mdesc_s"], 4),
                "busiest_node_ms": round(busiest / 1e6, 1),
                "steer_ms": round(report["steer_ns"] / 1e6, 1),
            }
        )
    print()
    print(
        format_table(
            rows,
            title=(
                f"parallel ingest scaling — uniform_random, thread:{WORKERS} "
                f"({PACKETS} packets)"
            ),
        )
    )

    speedup = rates[4] / rates[1]
    assert rates[2] > rates[1], rates
    assert rates[4] > rates[2], rates
    if PACKETS >= FULL_GATE_PACKETS:
        assert speedup >= 2.0, rates
    bench_emit(
        "parallel",
        {
            **{
                f"thread_nodes_{nodes}_agg_mdesc_s": round(rates[nodes], 4)
                for nodes in NODE_COUNTS
            },
            "thread_speedup_4_nodes": round(speedup, 2),
            "thread_workers": WORKERS,
            "packets": PACKETS,
        },
    )


def test_parallel_books_bit_identical_to_sequential(bench_emit):
    """Thread-parallel books/top-k equal the sequential reference exactly."""
    rows = []
    for scenario in ("uniform_random", "zipf_mix"):
        sequential = _drive(scenario, 4, SequentialExecutor())
        parallel = _drive(scenario, 4, ThreadExecutor(WORKERS))
        assert parallel.flow_books() == sequential.flow_books(), scenario
        assert parallel.flow_books()["balanced"], scenario
        assert parallel.cluster_totals() == sequential.cluster_totals(), scenario
        assert _top_k(parallel) == _top_k(sequential), scenario
        rows.append(
            {
                "scenario": scenario,
                "completed": parallel.cluster_totals()["completed"],
                "books_exact": True,
                f"top{TOP_K}_exact": True,
            }
        )
    print()
    print(
        format_table(
            rows, title=f"parallel vs sequential exactness (4 nodes, {PACKETS} packets)"
        )
    )
    bench_emit("parallel", {"books_exact_scenarios": len(rows)})

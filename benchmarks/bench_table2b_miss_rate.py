"""Table II(B) — processing rate versus flow miss rate.

The table is pre-populated with 10 K five-tuple flow entries and queried with
descriptor sets whose miss rate is fixed at 100/75/50/25/0 %.  The shape to
check: the rate rises monotonically as the miss rate falls, hit-dominated
traffic runs roughly twice as fast as miss-dominated traffic, and below 50 %
miss the rate exceeds the 40 GbE requirement of 59.52 Mpps.
"""

import pytest

from repro.reporting import PAPER_TABLE2B, format_table, run_table2b_miss_rate

QUERIES = 3000


def test_table2b_rate_vs_miss_rate(benchmark, bench_emit):
    result = benchmark.pedantic(
        lambda: run_table2b_miss_rate(table_entries=10_000, query_count=QUERIES),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    print()
    merged = []
    paper_by_miss = {row["miss_rate"]: row["rate_mdesc_s"] for row in PAPER_TABLE2B}
    for row in rows:
        paper_rate = paper_by_miss[row["miss_rate"]]
        merged.append(
            {
                "miss_rate": row["miss_rate"],
                "measured_mdesc_s": row["rate_mdesc_s"],
                "paper_mdesc_s": paper_rate,
                "measured/paper": row["rate_mdesc_s"] / paper_rate,
            }
        )
    print(format_table(merged, title="Table II(B) — rate vs flow miss rate (10K-entry table)"))

    by_miss = {row["miss_rate"]: row["rate_mdesc_s"] for row in rows}
    rates_in_miss_order = [by_miss[m] for m in (1.0, 0.75, 0.5, 0.25, 0.0)]
    assert rates_in_miss_order == sorted(rates_in_miss_order)
    assert 1.7 <= by_miss[0.0] / by_miss[1.0] <= 2.6
    assert by_miss[0.5] > 59.52  # 40 GbE line-rate requirement (Section V-B)
    # Within ~15% of every absolute paper value.
    for row in merged:
        assert row["measured/paper"] == pytest.approx(1.0, abs=0.16)
    benchmark.extra_info["rows"] = merged
    bench_emit("table2b_miss_rate", {
        f"miss_{int(miss * 100)}pct_mdesc_s": rate for miss, rate in by_miss.items()
    })

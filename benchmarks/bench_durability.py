"""Durability layer — lossless k=2 failover, checkpoint loss windows.

No paper reference: this is the durability tier above the PR-3 cluster
layer (``repro.persist`` checkpoints plus ring replication).  Three
properties are checked:

1. **Replication is lossless** — with ``replication=2``, a forced mid-run
   node failure on ``node_failover`` reports ``flows_lost == 0`` and
   ``telemetry_packets_lost == 0``, and the cluster-wide merged top-k
   equals the no-failure run's top-k exactly.  The price is measured, not
   hidden: the replica stores and backup pipelines' memory and the
   host-side ingest slowdown are reported against the unreplicated
   baseline.
2. **Checkpointing bounds the loss window** — with automatic checkpoints
   every ``P`` packets, a failure loses at most the since-last-checkpoint
   delta: ``telemetry_packets_lost <= P``, and the lost flows are only
   those the latest checkpoint had not captured.
3. **The books always balance** — in every mode the global outcome totals
   (``hits + misses == packets``) and the flow-conservation identity
   (``created == live + exported + folded + lost``) hold across the
   failure and recovery.

Set ``DURABILITY_BENCH_PACKETS`` to shrink or grow the workload (CI smoke
runs use a small value).
"""

import os
import time

from repro.cluster import ClusterCoordinator
from repro.net.parser import DescriptorExtractor
from repro.reporting import format_table, merged_top_k, run_durability_comparison
from repro.telemetry import TelemetryConfig
from repro.traffic import scenario_descriptors

PACKETS = int(os.environ.get("DURABILITY_BENCH_PACKETS", "4000"))
SEED = 47
TOP_K = 10
TELEMETRY = TelemetryConfig(heavy_hitter_capacity=max(1024, 2 * PACKETS))
CHECKPOINT_INTERVAL = max(64, PACKETS // 16)


def _descriptors():
    return scenario_descriptors(
        "node_failover", PACKETS, seed=SEED, extractor=DescriptorExtractor()
    )


def _build(**overrides) -> ClusterCoordinator:
    return ClusterCoordinator(
        nodes=4,
        telemetry_config=TELEMETRY,
        telemetry_seed=SEED,
        batch_size=128,
        **overrides,
    )


def _run_with_failure(coordinator: ClusterCoordinator):
    """Ingest the stream, failing the busiest node at the halfway point."""
    descriptors = _descriptors()
    started = time.perf_counter()
    coordinator.ingest(descriptors[: PACKETS // 2])
    victim = max(coordinator.nodes, key=lambda n: coordinator.nodes[n].active_flows)
    live_at_failure = coordinator.nodes[victim].active_flows
    event = coordinator.fail_node(victim)
    coordinator.ingest(descriptors[PACKETS // 2 :])
    return event, live_at_failure, time.perf_counter() - started


def _top_k(coordinator: ClusterCoordinator):
    # The same deterministic ordering the durability experiment reports.
    return merged_top_k(coordinator, TOP_K)


def _assert_books_balance(coordinator: ClusterCoordinator):
    totals = coordinator.cluster_totals()
    assert totals["completed"] == coordinator.ingested == PACKETS
    assert totals["hits"] + totals["misses"] == totals["completed"]
    books = coordinator.flow_books()
    assert books["balanced"], books
    return books


def test_k2_replication_makes_failover_lossless(bench_emit):
    # Two anchors: a no-failure run for the top-k reference, and an
    # unprotected run with the *same* failure for the wall-clock
    # denominator (so the ratio isolates replication's overhead).
    baseline = _build()
    baseline.ingest(_descriptors())
    baseline_top = _top_k(baseline)
    _, _, unprotected_wall = _run_with_failure(_build())

    replicated = _build(replication=2)
    event, live_at_failure, replicated_wall = _run_with_failure(replicated)

    # Lossless: every live flow of the victim was promoted from replicas,
    # every telemetry packet reassembled from the backup pipelines.
    assert live_at_failure > 0
    assert event["recovery"] == "replicas"
    assert event["restored"] == live_at_failure
    assert replicated.flows_lost == 0
    assert replicated.telemetry_packets_lost == 0
    assert replicated.merged_telemetry().packets == PACKETS
    assert _top_k(replicated) == baseline_top
    _assert_books_balance(replicated)

    # The cost is reported, not hidden: replica state occupies real memory
    # and the extra per-packet mirroring costs host wall-clock.
    memory_overhead = replicated.replica_memory_bytes
    assert memory_overhead > 0
    slowdown = replicated_wall / unprotected_wall if unprotected_wall > 0 else 0.0
    print()
    print(format_table(
        [
            {
                "packets": PACKETS,
                "flows_restored": replicated.flows_restored,
                "replicated_pkts": replicated.replicated_packets,
                "replica_mem_kB": round(memory_overhead / 1024, 1),
                "ingest_slowdown": round(slowdown, 2),
                f"top{TOP_K}_match": True,
            }
        ],
        title="k=2 replication — lossless failover and its cost (node_failover)",
    ))
    bench_emit("durability", {
        "k2_flows_restored": replicated.flows_restored,
        "k2_replica_memory_bytes": memory_overhead,
        "k2_ingest_slowdown": round(slowdown, 3),
    })


def test_checkpoint_interval_bounds_the_loss_window(bench_emit):
    interval = CHECKPOINT_INTERVAL
    coordinator = _build(checkpoint_interval=interval)
    event, live_at_failure, _ = _run_with_failure(coordinator)

    # The victim had been checkpointed (the stream half exceeds the
    # interval per node), so recovery replayed its latest snapshot.
    assert coordinator.checkpoints_taken > 0
    assert event["recovery"] == "checkpoint"

    # Losses shrink to the since-last-checkpoint delta: at most `interval`
    # telemetry packets, and only the flows the checkpoint missed.
    assert coordinator.telemetry_packets_lost <= interval
    assert 0 <= coordinator.flows_lost <= live_at_failure
    assert event["restored"] == coordinator.flows_restored > 0
    assert coordinator.flows_lost + coordinator.flows_restored == live_at_failure
    _assert_books_balance(coordinator)

    print()
    print(format_table(
        [
            {
                "packets": PACKETS,
                "interval": interval,
                "checkpoints": coordinator.checkpoints_taken,
                "ckpt_kB": round(coordinator.checkpoint_bytes / 1024, 1),
                "flows_at_failure": live_at_failure,
                "flows_restored": coordinator.flows_restored,
                "flows_lost": coordinator.flows_lost,
                "tel_pkts_lost": coordinator.telemetry_packets_lost,
            }
        ],
        title="checkpointing — loss window vs interval (node_failover)",
    ))
    bench_emit("durability", {
        "checkpoint_interval": interval,
        "checkpoints_taken": coordinator.checkpoints_taken,
        "checkpoint_bytes": coordinator.checkpoint_bytes,
        "checkpoint_flows_lost": coordinator.flows_lost,
        "checkpoint_tel_pkts_lost": coordinator.telemetry_packets_lost,
    })


def test_durability_comparison_experiment(benchmark, bench_emit):
    intervals = (CHECKPOINT_INTERVAL, 4 * CHECKPOINT_INTERVAL)
    result = benchmark.pedantic(
        lambda: run_durability_comparison(
            packet_count=max(600, PACKETS // 2),
            checkpoint_intervals=intervals,
            seed=SEED,
        ),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    print()
    print(format_table(rows, title="durability comparison — checkpoint interval vs k=2"))

    assert {row["scenario"] for row in rows} == {"node_failover", "churn"}
    for row in rows:
        assert row["balanced"], row
        if row["mode"] == "replica_k2":
            assert row["flows_lost"] == 0
            assert row["telemetry_pkts_lost"] == 0
            assert row[f"top{TOP_K}_match"]
            assert row["extra_memory_kB"] > 0
        elif row["mode"].startswith("checkpoint@"):
            interval = int(row["mode"].split("@", 1)[1])
            assert row["telemetry_pkts_lost"] <= interval
    benchmark.extra_info["rows"] = rows
    bench_emit("durability", {
        f"{row['scenario']}_{row['mode']}_ingest_slowdown": row["ingest_slowdown"]
        for row in rows
    })

"""Table II(A) — processing rate with defined hash patterns.

Reproduces the load-balancing / bank-selection experiment: random hash values
versus a unique "bank address incremented by one" sequence, with the fraction
of first lookups on path A swept over 50 % / 25 % / 0 %.  The shape to check:
balanced load is fastest, forcing all traffic through one path costs roughly
20 %, and random hashes are close to the ideal increment pattern.
"""

import pytest

from repro.reporting import PAPER_TABLE2A, format_table, run_table2a_load_balance

DESCRIPTORS = 4000


def test_table2a_hash_patterns_and_load_balance(benchmark, bench_emit):
    result = benchmark.pedantic(
        lambda: run_table2a_load_balance(descriptor_count=DESCRIPTORS),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    print()
    merged = []
    for measured, paper in zip(rows, PAPER_TABLE2A):
        merged.append(
            {
                "pattern": measured["pattern"],
                "path_a_load": measured["path_a_load"],
                "measured_mdesc_s": measured["rate_mdesc_s"],
                "paper_mdesc_s": paper["rate_mdesc_s"],
                "measured/paper": measured["rate_mdesc_s"] / paper["rate_mdesc_s"],
            }
        )
    print(format_table(merged, title="Table II(A) — rate vs hash pattern and path-A load"))

    by_load = {row["path_a_load"]: row["rate_mdesc_s"] for row in rows if row["pattern"] == "bank_increment"}
    random_rate = next(row["rate_mdesc_s"] for row in rows if row["pattern"] == "random")

    # Shape assertions from the paper: ordering with load, bounded degradation,
    # and no drastic random-vs-increment gap.
    assert by_load[0.5] > by_load[0.25] > by_load[0.0]
    assert by_load[0.0] / by_load[0.5] > 0.6
    assert random_rate / by_load[0.5] > 0.8
    benchmark.extra_info["rows"] = merged
    bench_emit("table2a_load_balance", {
        "bank_increment_50pct_mdesc_s": by_load[0.5],
        "bank_increment_0pct_mdesc_s": by_load[0.0],
        "random_pattern_mdesc_s": random_rate,
    })

"""Cluster layer — scaling, fail-over accounting, merged telemetry fidelity.

No paper reference: this is the scale-out tier above the PR-2 sharded
engine.  Three properties are checked:

1. **Scaling** — cluster aggregate (simulated) throughput grows with the
   node count on the realistic ``zipf_mix`` workload: at least 2x with 4
   nodes versus 1, because nodes are independent machines and the ring
   spreads flows across them.
2. **Fail-over accounting** — after a node join (live flows migrate) and a
   forced node failure mid-run (live flows and sketches are lost), the
   books still balance exactly: every ingested descriptor was completed by
   exactly one node, surviving or not, and the migrated/lost flow counts
   are reported explicitly rather than papered over.
3. **Merged telemetry fidelity** — the cluster-wide heavy-hitter view
   obtained by merging per-node Space-Saving summaries matches the exact
   single-node tally's top-k on every named scenario (the summaries are
   sized so no evictions occur, where the merge is provably exact).

Set ``CLUSTER_BENCH_PACKETS`` to shrink or grow the workload (CI smoke runs
use a small value).
"""

import os
from pathlib import Path

from repro.cluster import ClusterCoordinator
from repro.core.config import small_test_config
from repro.engine import run_scenario_single
from repro.obs import Observability, Stopwatch
from repro.reporting import exact_top_k, format_table, run_cluster_scaling
from repro.telemetry import TelemetryConfig
from repro.traffic import (
    generate_scenario,
    list_scenarios,
    scenario_block,
    scenario_descriptors,
)

PACKETS = int(os.environ.get("CLUSTER_BENCH_PACKETS", "4000"))
NODE_COUNTS = (1, 2, 4)
TOP_K = 10


def test_cluster_throughput_scaling(benchmark, bench_emit):
    result = benchmark.pedantic(
        lambda: run_cluster_scaling(
            scenario="zipf_mix", packet_count=PACKETS, node_counts=NODE_COUNTS, seed=19
        ),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    print()
    print(format_table(rows, title=f"cluster scaling — zipf_mix ({PACKETS} packets)"))

    by_nodes = {row["nodes"]: row for row in rows}
    assert set(by_nodes) == set(NODE_COUNTS)

    # Outcome totals are invariant under the node count (ring flow pinning).
    for row in rows:
        assert row["matches_single_path"], row

    # Aggregate throughput rises with node count: >= 2x at 4 nodes versus 1.
    rates = [by_nodes[nodes]["throughput_mdesc_s"] for nodes in NODE_COUNTS]
    assert rates == sorted(rates)
    assert by_nodes[4]["throughput_mdesc_s"] >= 2.0 * by_nodes[1]["throughput_mdesc_s"]
    benchmark.extra_info["rows"] = rows
    bench_emit("cluster", {
        f"nodes_{nodes}_mdesc_s": by_nodes[nodes]["throughput_mdesc_s"]
        for nodes in NODE_COUNTS
    })


def test_failover_accounting_is_exact(bench_emit):
    packets = max(800, PACKETS // 2)
    descriptors = scenario_descriptors("node_failover", packets, seed=29)
    coordinator = ClusterCoordinator(nodes=4, telemetry_seed=29)

    coordinator.ingest(descriptors[: packets // 2])
    assert coordinator.cluster_totals()["completed"] == packets // 2

    # A node joins: the live flows in its new arcs migrate onto it, losslessly.
    join = coordinator.add_node("joiner")
    assert join["migrated"] > 0
    assert join["lost"] == 0

    # A node is forced to fail: its live flows and sketches are lost.
    victim = max(coordinator.nodes, key=lambda n: coordinator.nodes[n].active_flows)
    at_failure = coordinator.nodes[victim].active_flows
    completed_by_victim = coordinator.nodes[victim].completed
    failure = coordinator.fail_node(victim)
    assert failure["lost"] == at_failure > 0

    coordinator.ingest(descriptors[packets // 2 :])

    # The books balance exactly: every descriptor completed on exactly one
    # node, surviving or failed, and hits + misses == completed throughout.
    totals = coordinator.cluster_totals()
    alive = coordinator.alive_totals()
    assert totals["completed"] == coordinator.ingested == packets
    assert totals["hits"] + totals["misses"] == totals["completed"]
    assert alive["completed"] == packets - completed_by_victim
    assert alive["hits"] + alive["misses"] == alive["completed"]

    # Migration and loss are reported explicitly, and losing flow state
    # costs re-learning: the cluster sees more new flows than the
    # uninterrupted single path would have.
    assert coordinator.flows_migrated >= join["migrated"]
    assert coordinator.flows_lost == failure["lost"]
    single = run_scenario_single("node_failover", packets, seed=29)
    relearned = totals["new_flows"] - single.totals()["new_flows"]
    assert 0 < relearned <= coordinator.flows_lost

    print()
    print(format_table(
        [
            {
                "packets": packets,
                "migrated": coordinator.flows_migrated,
                "lost": coordinator.flows_lost,
                "relearned_flows": relearned,
                "telemetry_pkts_lost": coordinator.telemetry_packets_lost,
                "balanced": totals["completed"] == coordinator.ingested,
            }
        ],
        title="fail-over accounting — node_failover",
    ))
    bench_emit("cluster", {
        "failover_migrated_flows": coordinator.flows_migrated,
        "failover_lost_flows": coordinator.flows_lost,
        "failover_relearned_flows": relearned,
    })


def test_columnar_ingest_matches_and_outpaces_object_path(bench_emit):
    """Block ingest through the ring: same books, faster host-side.

    One ``DescriptorBlock`` rides ``ClusterCoordinator.ingest`` end to end
    (vectorised ring lookup, per-node block slices, bulk probes, columnar
    telemetry) and must produce byte-identical ``flow_books()`` and merged
    top-k versus the object-path ingest of the same stream, while ingesting
    faster on the host.  The measured rates join ``BENCH_cluster.json``.
    """
    packets = max(800, PACKETS // 2)
    config = TelemetryConfig(heavy_hitter_capacity=8 * packets)
    descriptors = scenario_descriptors("zipf_mix", packets, seed=37)
    block = scenario_block("zipf_mix", packets, seed=37)

    def drive(feed):
        coordinator = ClusterCoordinator(
            nodes=3, telemetry_config=config, telemetry_seed=37, batch_size=256
        )
        watch = Stopwatch()
        coordinator.ingest(feed)
        return coordinator, watch.elapsed_s

    # Interleave the paired runs so scheduler or allocator drift across the
    # measurement window hits both representations alike.
    object_runs, block_runs = [], []
    for _ in range(3):
        object_runs.append(drive(descriptors))
        block_runs.append(drive(block))
    obj, object_wall = object_runs[0][0], min(w for _, w in object_runs)
    col, block_wall = block_runs[0][0], min(w for _, w in block_runs)

    assert col.cluster_totals() == obj.cluster_totals()
    assert col.flow_books() == obj.flow_books()
    assert col.flow_books()["balanced"]
    merged_obj = obj.merged_telemetry()
    merged_col = col.merged_telemetry()
    top = lambda merged: [
        (hitter.key, hitter.count)
        for hitter in sorted(
            merged.heavy_hitters.entries(), key=lambda h: (-h.count, h.key)
        )[:TOP_K]
    ]
    assert top(merged_col) == top(merged_obj)

    speedup = object_wall / block_wall
    assert speedup > 1.0, (object_wall, block_wall)
    print()
    print(format_table(
        [
            {
                "packets": packets,
                "object_mdesc_s": round(packets / object_wall / 1e6, 3),
                "columnar_mdesc_s": round(packets / block_wall / 1e6, 3),
                "speedup": round(speedup, 2),
            }
        ],
        title="cluster block ingest vs object ingest — zipf_mix (3 nodes)",
    ))
    bench_emit("cluster", {
        "ingest_object_mdesc_s": round(packets / object_wall / 1e6, 4),
        "ingest_columnar_mdesc_s": round(packets / block_wall / 1e6, 4),
        "ingest_columnar_speedup": round(speedup, 2),
    })


def _windowed_cluster_run(scenario, packets, nodes=5, seed=42, segments=16):
    """Drive a cluster with the full obs plane over a time-ordered stream.

    The stream is fed in ``segments`` slices so the windowed clock advances
    mid-run the way a live collector's would, and ``finalize_telemetry``
    flushes the partial tail window.  Returns (cluster, obs, descriptors).
    """
    descriptors = scenario_descriptors(scenario, packets, seed=seed)
    duration = descriptors[-1].timestamp_ps - descriptors[0].timestamp_ps
    obs = Observability(window_ps=duration // 8, spans=True, alerts=True)
    cluster = ClusterCoordinator(nodes=nodes, config=small_test_config(), obs=obs)
    step = max(1, packets // segments)
    for offset in range(0, packets, step):
        cluster.ingest(descriptors[offset : offset + step])
    cluster.finalize_telemetry()
    return cluster, obs, descriptors


def test_alert_detection_latency_acceptance(bench_emit):
    """ISSUE 8 acceptance: the shipped watchdogs detect the scripted
    hotspot shift within a bounded number of windows of its onset, and stay
    quiet on the steady-state workload.

    ``hotspot_shift`` re-aims its traffic concentration mid-stream;
    the ``node_imbalance`` rule (windowed per-node load skew over the
    default 1.8 threshold) must fire in the shift window or within two
    windows after it — detection latency is bounded by the window width,
    not by run length.  The same rules over ``zipf_mix`` must fire nothing
    at all.  When ``REPRO_OBS_DIR`` is set the run's windows, spans, and
    event journal are written there as JSONL for the CI report step.
    """
    cluster, obs, descriptors = _windowed_cluster_run("hotspot_shift", PACKETS)
    onset = obs.alerts.first_onset("node_imbalance")
    assert onset is not None, "node_imbalance never fired on hotspot_shift"

    windows = obs.windows.windows
    shift_ps = descriptors[len(descriptors) // 2].timestamp_ps
    shift_window = (shift_ps - windows[0].start_ps) // windows[0].width_ps
    windows_to_detect = onset.window - shift_window
    assert 0 <= windows_to_detect <= 2, (onset.window, shift_window)
    # The onset event carries the coordinator's point-of-onset diagnosis
    # and no other watchdog cried wolf on the way.
    assert onset.context["imbalance_detected"] is True
    assert {firing.rule for firing in obs.alerts.firings} == {"node_imbalance"}

    quiet_cluster, quiet_obs, _ = _windowed_cluster_run("zipf_mix", PACKETS)
    assert quiet_obs.alerts.firings == []
    assert quiet_cluster.cluster_totals()["completed"] == PACKETS

    obs_dir = os.environ.get("REPRO_OBS_DIR")
    if obs_dir:
        out = Path(obs_dir)
        out.mkdir(parents=True, exist_ok=True)
        obs.windows.write_jsonl(out / "hotspot_shift_windows.jsonl")
        obs.spans.write_jsonl(out / "hotspot_shift_spans.jsonl")
        obs.journal.write_jsonl(out / "hotspot_shift_journal.jsonl")

    print()
    print(format_table(
        [
            {
                "packets": PACKETS,
                "windows": len(windows),
                "window_ps": windows[0].width_ps,
                "onset_window": onset.window,
                "windows_to_detect": windows_to_detect,
                "onset_value": round(onset.value, 3),
                "quiet_firings": len(quiet_obs.alerts.firings),
            }
        ],
        title="alert detection latency — hotspot_shift vs zipf_mix (5 nodes)",
    ))
    bench_emit("cluster", {
        "alert_onset_window": onset.window,
        "alert_windows_to_detect": windows_to_detect,
        "alert_window_ps": windows[0].width_ps,
        "alert_onset_imbalance": round(onset.value, 4),
    })


def test_merged_topk_matches_exact_on_every_scenario():
    packets = max(600, PACKETS // 4)
    config = TelemetryConfig(heavy_hitter_capacity=8 * packets)
    rows = []
    for name in list_scenarios():
        coordinator = ClusterCoordinator(
            nodes=3, telemetry_config=config, telemetry_seed=37
        )
        coordinator.ingest(scenario_descriptors(name, packets, seed=37))
        merged = coordinator.merged_telemetry()

        stream = generate_scenario(name, packets, seed=37)
        flows = len({packet.key for packet in stream})

        # The summaries never filled, so the merge is exact: compare the
        # top-k lists directly, byte counts included, with the shared
        # deterministic (count desc, key) order so ties cannot flake.
        exact_top = exact_top_k(stream, TOP_K)
        merged_top = [
            (hitter.key, hitter.count)
            for hitter in sorted(
                merged.heavy_hitters.entries(), key=lambda h: (-h.count, h.key)
            )[:TOP_K]
        ]
        assert merged_top == exact_top, name
        assert merged.packets == packets
        rows.append(
            {
                "scenario": name,
                "flows": flows,
                f"top{TOP_K}_match": merged_top == exact_top,
                "heaviest_bytes": exact_top[0][1],
            }
        )
    print()
    print(format_table(
        rows, title=f"cluster-wide merged top-{TOP_K} vs exact ({packets} packets each)"
    ))

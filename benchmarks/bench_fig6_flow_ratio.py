"""Figure 6 — new-flow / packet ratio of the (synthetic) traffic trace.

The paper measures a real 2012 switch-fabric trace: ~57 % of the first
thousand packets start new flows, 33.8 % over ten thousand, under 10 % for
sufficiently large packet sets.  The calibrated synthetic trace generator
substitutes for the unavailable trace; the shape to check is the monotone
decay through the paper's anchor region.
"""

import pytest

from repro.reporting import PAPER_FIG6, format_table, run_fig6_flow_ratio

CHECKPOINTS = (1_000, 10_000, 100_000, 300_000)


def test_fig6_new_flow_ratio_curve(benchmark, bench_emit):
    result = benchmark.pedantic(
        lambda: run_fig6_flow_ratio(checkpoints=CHECKPOINTS),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    print()
    print(format_table(rows, title="Figure 6 — new flows vs packets (synthetic trace)", float_digits=4))
    print(f"paper anchors: {PAPER_FIG6[0]['new_flow_ratio']:.2f} at 1K packets, "
          f"{PAPER_FIG6[1]['new_flow_ratio']:.4f} at 10K, <{PAPER_FIG6[2]['new_flow_ratio']:.2f} for large sets")

    ratios = {row["packets"]: row["new_flow_ratio"] for row in rows}
    ordered = [ratios[c] for c in CHECKPOINTS]
    assert ordered == sorted(ordered, reverse=True)
    assert ratios[1_000] == pytest.approx(0.57, abs=0.12)
    assert ratios[10_000] == pytest.approx(0.3381, abs=0.08)
    assert ratios[CHECKPOINTS[-1]] < ratios[1_000] / 2
    benchmark.extra_info["rows"] = rows
    bench_emit("fig6_flow_ratio", {
        f"new_flow_ratio_at_{packets}": ratio for packets, ratio in ratios.items()
    })


def test_fig6_warm_table_miss_rate_with_flow_lut(benchmark, bench_emit):
    """Companion measurement: drive a Flow LUT with the trace and confirm the
    lookup miss rate equals the new-flow ratio (only first packets miss)."""
    from repro.core.config import small_test_config
    from repro.core.flow_lut import FlowLUT
    from repro.core.harness import run_lookup_experiment
    from repro.net.parser import DescriptorExtractor
    from repro.traffic import SyntheticTraceGenerator

    def run():
        generator = SyntheticTraceGenerator(seed=99)
        packets = generator.packet_list(4000)
        extractor = DescriptorExtractor()
        descriptors = extractor.extract_many(packets)
        lut = FlowLUT(small_test_config())
        result = run_lookup_experiment(lut, descriptors, input_rate_hz=100e6)
        distinct = len({p.key for p in packets})
        return result, distinct, len(packets)

    result, distinct, count = benchmark.pedantic(run, rounds=1, iterations=1)
    expected_ratio = distinct / count
    print()
    print(f"trace: {count} packets, {distinct} flows (ratio {expected_ratio:.3f}); "
          f"measured Flow LUT miss rate {result.miss_rate:.3f}, "
          f"throughput {result.throughput_mdesc_s:.1f} Mdesc/s")
    assert result.miss_rate == pytest.approx(expected_ratio, abs=0.02)
    bench_emit("fig6_flow_ratio", {
        "flow_lut_miss_rate": result.miss_rate,
        "flow_lut_throughput_mdesc_s": result.throughput_mdesc_s,
    })

"""Table I — on-chip resource usage of the prototype configuration.

The Python model cannot synthesise RTL, so the reproduced part is the
architecturally determined storage budget (CAM, queues, buffers, hash
matrices) for the 8-million-flow prototype configuration, printed next to the
paper's Stratix V report.
"""

from repro.core.config import PROTOTYPE_CONFIG, small_test_config
from repro.reporting import format_table, run_table1_resources


def test_table1_prototype_resource_budget(benchmark, bench_emit):
    result = benchmark(run_table1_resources, PROTOTYPE_CONFIG)
    print()
    print(format_table(result["rows"], title="Table I — resources (measured vs paper)"))
    breakdown_rows = [
        {"component": name, "bits": bits} for name, bits in sorted(result["breakdown"].items())
    ]
    print(format_table(breakdown_rows, title="Storage breakdown (bits)"))
    measured = next(r for r in result["rows"] if r["quantity"] == "block_memory_bits")["measured"]
    assert measured > 0
    benchmark.extra_info["block_memory_bits"] = measured
    benchmark.extra_info["paper_block_memory_bits"] = result["paper"]["block_memory_bits"]
    bench_emit("table1_resources", {
        "block_memory_bits": measured,
        "paper_block_memory_bits": result["paper"]["block_memory_bits"],
    })


def test_table1_resource_scaling_with_cam_size(benchmark):
    """Ablation: how the storage budget scales with the overflow CAM size."""

    def sweep():
        rows = []
        for cam_entries in (16, 64, 256, 1024):
            result = run_table1_resources(small_test_config(cam_entries=cam_entries))
            measured = next(
                r for r in result["rows"] if r["quantity"] == "block_memory_bits"
            )["measured"]
            rows.append({"cam_entries": cam_entries, "block_memory_bits": measured})
        return rows

    rows = benchmark(sweep)
    print()
    print(format_table(rows, title="Table I ablation — CAM size vs storage"))
    bits = [row["block_memory_bits"] for row in rows]
    assert bits == sorted(bits)

"""Space-Saving eviction — lazy min-heap versus the naive ``min()`` scan.

Before this fix, ``SpaceSavingTracker.update`` located its eviction victim
with a ``min()`` scan over all monitored keys, making every unmonitored
arrival O(capacity) — quadratic-feeling under churn and port-scan workloads
where nearly every packet starts a new flow.  The tracker now keeps a lazy
min-heap, so an eviction costs amortised O(log capacity).

This microbenchmark replays a pure-churn stream (every arrival unmonitored,
so every update at capacity evicts) against both the fixed tracker and
``NaiveSpaceSaving`` — a copy of the pre-fix implementation kept here as the
before/after reference — and checks that the speedup grows with capacity.

Set ``SPACE_SAVING_BENCH_UPDATES`` to shrink or grow the stream (CI smoke
runs use a small value).
"""

import os
import time
from typing import Dict, Hashable

from repro.reporting import format_table
from repro.telemetry import SpaceSavingTracker

UPDATES = int(os.environ.get("SPACE_SAVING_BENCH_UPDATES", "20000"))
CAPACITIES = (128, 512, 2048)


class NaiveSpaceSaving:
    """The pre-fix tracker: eviction via a ``min()`` scan over all counters."""

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._counts: Dict[Hashable, int] = {}
        self._errors: Dict[Hashable, int] = {}
        self.total = 0
        self.evictions = 0

    def update(self, key: Hashable, count: int = 1) -> None:
        self.total += count
        if key in self._counts:
            self._counts[key] += count
            return
        if len(self._counts) < self.capacity:
            self._counts[key] = count
            self._errors[key] = 0
            return
        victim = min(self._counts, key=self._counts.__getitem__)
        floor = self._counts.pop(victim)
        self._errors.pop(victim)
        self._counts[key] = floor + count
        self._errors[key] = floor
        self.evictions += 1


def _churn_stream(updates: int):
    # Every arrival is a brand-new key: the worst case, one eviction per
    # update once the tracker is full.
    return range(updates)


def _measure(make_tracker, updates: int, repeats: int = 3):
    """Best-of-``repeats`` timing over fresh trackers, so one scheduler
    preemption or GC pause cannot flip the CI gate on a loaded runner."""
    best_s, tracker = None, None
    for _ in range(repeats):
        candidate = make_tracker()
        stream = _churn_stream(updates)
        started = time.perf_counter()
        for key in stream:
            candidate.update(key)
        elapsed = time.perf_counter() - started
        if best_s is None or elapsed < best_s:
            best_s, tracker = elapsed, candidate
    return best_s, tracker


def test_eviction_is_no_longer_linear_in_capacity(benchmark, bench_emit):
    def run():
        rows = []
        for capacity in CAPACITIES:
            naive_s, naive = _measure(lambda: NaiveSpaceSaving(capacity), UPDATES)
            fixed_s, fixed = _measure(lambda: SpaceSavingTracker(capacity), UPDATES)
            assert fixed.evictions == naive.evictions == max(0, UPDATES - capacity)
            assert fixed.total == naive.total == UPDATES
            rows.append(
                {
                    "capacity": capacity,
                    "updates": UPDATES,
                    "naive_kups": round(UPDATES / naive_s / 1e3, 1),
                    "heap_kups": round(UPDATES / fixed_s / 1e3, 1),
                    "speedup": round(naive_s / fixed_s, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Space-Saving eviction — naive min() scan vs lazy heap"))

    # The naive scan slows down linearly with capacity; the heap must not.
    # Margins are kept very wide (the measured gaps are an order of magnitude
    # or more) so a loaded CI runner cannot flip a verdict with timing noise
    # on the millisecond-scale quick-mode samples.
    assert rows[-1]["speedup"] >= 2.0, rows
    assert rows[-1]["naive_kups"] < rows[0]["naive_kups"] / 2, rows  # naive degrades
    assert rows[-1]["heap_kups"] > rows[0]["heap_kups"] / 10, rows  # heap stays flat-ish
    benchmark.extra_info["rows"] = rows
    bench_emit("space_saving", {
        f"capacity_{row['capacity']}_speedup": row["speedup"] for row in rows
    })
    bench_emit("space_saving", {
        f"capacity_{row['capacity']}_heap_kups": row["heap_kups"] for row in rows
    })

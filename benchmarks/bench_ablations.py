"""Ablation benches for the design choices the paper motivates but does not
quantify: the Bank Selector, burst-write batching, the early-exit pipeline,
the dual-path organisation and the overflow CAM size.
"""

import pytest

from repro.baselines.conventional_hashcam import ConventionalHashCam, PipelinedHashCam
from repro.core.config import small_test_config
from repro.core.flow_lut import FlowLUT
from repro.core.harness import run_lookup_experiment
from repro.reporting import format_table
from repro.traffic.generators import descriptors_from_keys, match_rate_workload, random_flow_keys
from repro.traffic.patterns import random_hash_patterns

DESCRIPTORS = 2500
RATE = 100e6


def _run(config, patterns):
    return run_lookup_experiment(FlowLUT(config), patterns, input_rate_hz=RATE)


def test_ablation_bank_selector(benchmark, bench_emit):
    """Bank Selector on/off under random hash patterns (Section IV-A)."""

    def run():
        on = small_test_config()
        off = small_test_config(bank_select_enabled=False)
        patterns = random_hash_patterns(DESCRIPTORS, on, seed=41)
        return {
            "enabled": _run(on, list(patterns)).throughput_mdesc_s,
            "disabled": _run(off, list(patterns)).throughput_mdesc_s,
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        [{"bank_selector": k, "rate_mdesc_s": v} for k, v in rates.items()],
        title="Ablation — Bank Selector",
    ))
    assert rates["disabled"] <= rates["enabled"]
    benchmark.extra_info.update(rates)
    bench_emit("ablations", {
        "bank_selector_on_mdesc_s": rates["enabled"],
        "bank_selector_off_mdesc_s": rates["disabled"],
    })


def test_ablation_burst_write_generator(benchmark, bench_emit):
    """Burst-write batching on/off under a 100% miss (insert-heavy) workload."""

    def run():
        keys = random_flow_keys(DESCRIPTORS, seed=42)
        descriptors = descriptors_from_keys(keys)
        batched = _run(small_test_config(), list(descriptors)).throughput_mdesc_s
        immediate = _run(
            small_test_config(burst_writes_enabled=False), list(descriptors)
        ).throughput_mdesc_s
        return {"batched": batched, "immediate": immediate}

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        [{"burst_writes": k, "rate_mdesc_s": v} for k, v in rates.items()],
        title="Ablation — Burst Write Generator (100% miss workload)",
    ))
    assert rates["immediate"] <= rates["batched"] * 1.05
    benchmark.extra_info.update(rates)
    bench_emit("ablations", {
        "burst_writes_batched_mdesc_s": rates["batched"],
        "burst_writes_immediate_mdesc_s": rates["immediate"],
    })


def test_ablation_dual_path_vs_single_path(benchmark, bench_emit):
    """Dual-path lookup versus forcing every first lookup onto one path."""

    def run():
        keys = random_flow_keys(6000, seed=43)
        table = descriptors_from_keys(keys)
        queries = match_rate_workload(keys, DESCRIPTORS, match_fraction=0.5, seed=44)

        def measure(config):
            lut = FlowLUT(config)
            lut.preload([d.key_bytes for d in table])
            return run_lookup_experiment(lut, list(queries), input_rate_hz=RATE).throughput_mdesc_s

        return {
            "dual_path_hash_balanced": measure(small_test_config()),
            "single_path_first": measure(
                small_test_config(load_balance_policy="fixed", path_a_fraction=0.0)
            ),
        }

    rates = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        [{"organisation": k, "rate_mdesc_s": v} for k, v in rates.items()],
        title="Ablation — dual-path vs single-path first lookup (50% miss)",
    ))
    assert rates["single_path_first"] < rates["dual_path_hash_balanced"]
    benchmark.extra_info.update(rates)
    bench_emit("ablations", {
        "dual_path_mdesc_s": rates["dual_path_hash_balanced"],
        "single_path_mdesc_s": rates["single_path_first"],
    })


def test_ablation_early_exit_pipeline_read_savings(benchmark, bench_emit):
    """Early-exit (proposed) versus conventional simultaneous Hash-CAM search:
    DRAM reads per lookup on a hit-dominated workload."""

    def run():
        config = small_test_config()
        conventional = ConventionalHashCam(config, seed=45)
        pipelined = PipelinedHashCam(config, seed=45)
        keys = [k.pack() for k in random_flow_keys(5000, seed=46)]
        for key in keys:
            conventional.insert(key)
            pipelined.insert(key)
        for key in keys:
            conventional.lookup(key)
            pipelined.lookup(key)
        return {
            "conventional_reads_per_lookup": conventional.reads_per_lookup,
            "early_exit_reads_per_lookup": pipelined.reads_per_lookup,
        }

    reads = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(
        [{"table": k, "reads_per_lookup": v} for k, v in reads.items()],
        title="Ablation — early-exit pipeline vs conventional Hash-CAM",
    ))
    assert reads["early_exit_reads_per_lookup"] < reads["conventional_reads_per_lookup"]
    benchmark.extra_info.update(reads)
    bench_emit("ablations", reads)


def test_ablation_cam_size_vs_insert_failures(benchmark, bench_emit):
    """Overflow CAM size versus insertion failures at high table load."""

    def run():
        rows = []
        for cam_entries in (0, 8, 64, 256):
            config = small_test_config(num_flows=2048, cam_entries=max(1, cam_entries))
            lut = FlowLUT(config)
            descriptors = descriptors_from_keys(random_flow_keys(1800, seed=47))
            run_lookup_experiment(lut, descriptors, input_rate_hz=RATE)
            rows.append(
                {
                    "cam_entries": cam_entries,
                    "insert_failures": lut.insert_failures,
                    "cam_occupancy": lut.table.cam.occupancy,
                }
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table(rows, title="Ablation — CAM size vs insert failures (88% load)"))
    failures = [row["insert_failures"] for row in rows]
    assert failures == sorted(failures, reverse=True)
    benchmark.extra_info["rows"] = rows
    bench_emit("ablations", {
        f"cam_{row['cam_entries']}_insert_failures": row["insert_failures"] for row in rows
    })

"""Figure 3 — DDR3-1066 DQ bandwidth utilisation versus burst-group size.

The paper computes that issuing groups of N read bursts followed by N write
bursts on the same row (BL = 8) improves DQ utilisation from about 20 % at
N = 1 to about 90 % at N = 35.  This benchmark regenerates the whole curve
both analytically and by driving the DDR3 device model, and prints the two
next to the paper's endpoints.
"""

import pytest

from repro.memory.timing import DDR3_1066_187E, DDR3_1333, DDR3_1600
from repro.reporting import format_table, run_fig3_bandwidth

FULL_SWEEP = (1, 2, 3, 4, 6, 8, 12, 16, 20, 24, 28, 32, 35)


def test_fig3_ddr3_1066_utilisation_curve(benchmark, bench_emit):
    result = benchmark.pedantic(
        lambda: run_fig3_bandwidth(burst_counts=FULL_SWEEP, timing=DDR3_1066_187E, groups=48),
        rounds=1,
        iterations=1,
    )
    rows = result["rows"]
    print()
    print(format_table(rows, title="Figure 3 — DQ utilisation vs bursts (DDR3-1066 -187E)", float_digits=3))
    print(f"paper endpoints: ~{result['paper']['utilisation_at_1']:.2f} at N=1, "
          f"~{result['paper']['utilisation_at_35']:.2f} at N=35")
    by_bursts = {row["bursts"]: row for row in rows}
    assert by_bursts[1]["utilisation_analytic"] == pytest.approx(0.20, abs=0.03)
    assert by_bursts[35]["utilisation_analytic"] == pytest.approx(0.90, abs=0.03)
    benchmark.extra_info["utilisation_at_1"] = by_bursts[1]["utilisation_analytic"]
    benchmark.extra_info["utilisation_at_35"] = by_bursts[35]["utilisation_analytic"]
    bench_emit("fig3_ddr3_bandwidth", {
        "ddr3_1066_utilisation_at_1": by_bursts[1]["utilisation_analytic"],
        "ddr3_1066_utilisation_at_35": by_bursts[35]["utilisation_analytic"],
    })


@pytest.mark.parametrize("timing", [DDR3_1333, DDR3_1600], ids=lambda t: t.name)
def test_fig3_other_speed_grades(benchmark, timing, bench_emit):
    """Sensitivity study: the same curve for faster speed grades."""
    result = benchmark.pedantic(
        lambda: run_fig3_bandwidth(burst_counts=(1, 8, 35), timing=timing, groups=32),
        rounds=1,
        iterations=1,
    )
    print()
    print(format_table(result["rows"], title=f"Figure 3 variant — {timing.name}", float_digits=3))
    utilisations = [row["utilisation_analytic"] for row in result["rows"]]
    assert utilisations == sorted(utilisations)
    grade = timing.name.lower().replace("-", "_").replace(" ", "_")
    bench_emit("fig3_ddr3_bandwidth", {f"{grade}_utilisation_at_35": utilisations[-1]})

"""Closed control loop — rebalance convergence, quiescence, elasticity.

No paper reference: this gates the control loop that closes over the PR-8
windowed observability.  Three properties are checked:

1. **Convergence** — on ``hotspot_shift`` the rebalance policy restores the
   windowed load imbalance to <= 1.5 within 4 windows of the hotspot's
   onset, while the flow-conservation books stay balanced and the merged
   heavy-hitter top-k is bit-identical to the static fleet's (pins move
   *where* flows are measured, never *what* is measured).  Migration cost
   (flows moved) and convergence time (windows) are the emitted figures.
2. **Quiescence** — the same policies over the steady-state ``zipf_mix``
   and ``uniform_random`` workloads apply **zero** actions: healthy skew
   sits below the hysteresis engage line, so the loop never churns flows
   to chase noise.
3. **Elasticity** — a scripted quiet/surge/trickle stream drives the
   autoscaler: the fleet grows under the sustained surge, shrinks back on
   the trickle, and every descriptor is still completed exactly once
   through both membership changes.

Set ``REBALANCE_BENCH_PACKETS`` to shrink or grow the workload (CI smoke
runs use a small value).
"""

import os
from dataclasses import replace

from repro.cluster import (
    AutoscalePolicy,
    ClusterControl,
    ClusterCoordinator,
    RebalancePolicy,
)
from repro.obs import Observability
from repro.reporting import format_table, run_rebalance_policy
from repro.traffic import scenario_descriptors

PACKETS = int(os.environ.get("REBALANCE_BENCH_PACKETS", "8000"))
TOP_K = 10

# The CI quick mode (small REBALANCE_BENCH_PACKETS) uses fewer, fatter
# windows so each still carries enough packets for the load statistic to
# mean something; the policy's small-window floor scales to match (its
# production default guards against judging load from a handful of packets).
WINDOWS = 16 if PACKETS >= 8000 else 8
POLICY = RebalancePolicy(min_window_packets=max(16, PACKETS // (WINDOWS * 2)))


def test_rebalance_convergence_acceptance(bench_emit):
    """ISSUE 10 acceptance: on ``hotspot_shift`` the policy pulls the
    windowed imbalance back to <= 1.5 within 4 windows of onset, books
    conserved and merged top-k bit-identical to the no-policy run."""
    result = run_rebalance_policy(
        scenario="hotspot_shift",
        packet_count=PACKETS,
        windows=WINDOWS,
        rebalance=POLICY,
        top_k=TOP_K,
    )
    print()
    print(format_table(
        result["rows"],
        title=f"windowed imbalance, static vs policy — hotspot_shift ({PACKETS} packets)",
    ))

    assert result["onset_window"] is not None, "hotspot never crossed engage"
    assert result["converged_window"] is not None, "policy never converged"
    assert result["windows_to_converge"] <= 4, result
    # Convergence is held, not just touched: every window after the
    # convergence point stays at or below the target.
    tail = [
        row["policy_imbalance"]
        for row in result["rows"]
        if row["window"] >= result["converged_window"]
    ]
    assert all(value <= result["convergence_target"] for value in tail), tail
    # The corrections cost something — and that cost is bounded and visible.
    assert result["flows_moved"] > 0
    assert result["migration_fraction"] < 0.10, result["migration_fraction"]
    # Correctness locks: same totals, same top-k, balanced books.
    assert result["totals_match"]
    assert result[f"top{TOP_K}_match"]
    assert result["books_balanced"]
    # The watchdog and the control loop read the same signal: the alert's
    # onset window is the window the policy engaged on.  (The alert rule
    # keeps its own per-window sample floor, so the cross-check only binds
    # when the windows carry enough packets to clear it.)
    if result["alert_onset"] is not None:
        assert result["alert_onset"] == result["onset_window"]
    elif PACKETS >= 8000:
        raise AssertionError("node_imbalance never fired on the full workload")

    bench_emit("rebalance", {
        "onset_window": result["onset_window"],
        "converged_window": result["converged_window"],
        "windows_to_converge": result["windows_to_converge"],
        "flows_moved": result["flows_moved"],
        "migration_fraction": result["migration_fraction"],
        "peak_static_imbalance": max(r["static_imbalance"] for r in result["rows"]),
        "peak_policy_imbalance": max(r["policy_imbalance"] for r in result["rows"]),
        "final_policy_imbalance": result["rows"][-1]["policy_imbalance"],
    })


def test_policies_stay_quiet_on_steady_state(bench_emit):
    """Healthy workloads draw zero control actions: the hysteresis band is
    calibrated above steady-state skew, so the loop never flails."""
    rows = []
    for scenario in ("zipf_mix", "uniform_random"):
        result = run_rebalance_policy(
            scenario=scenario, packet_count=PACKETS, windows=WINDOWS, rebalance=POLICY
        )
        assert result["actions"] == [], (scenario, result["actions"])
        assert result["flows_moved"] == 0
        assert result["totals_match"] and result["books_balanced"]
        rows.append(
            {
                "scenario": scenario,
                "actions": len(result["actions"]),
                "peak_imbalance": max(r["policy_imbalance"] for r in result["rows"]),
                "flows_moved": result["flows_moved"],
            }
        )
    print()
    print(format_table(rows, title=f"control-loop quiescence ({PACKETS} packets each)"))
    bench_emit("rebalance", {
        f"quiet_{row['scenario']}_actions": row["actions"] for row in rows
    })


def _surge_stream(packets, windows=16, window_ps=10**9, seed=43):
    """A quiet/surge/trickle stream with scripted per-window packet counts.

    zipf_mix descriptors are re-timestamped onto a fixed window grid:
    5 quiet windows at the base rate, 5 surge windows at 4x, 6 trickle
    windows at a quarter — the load staircase an elastic fleet must track.
    """
    weights = [1.0] * 5 + [4.0] * 5 + [0.25] * (windows - 10)
    total_weight = sum(weights)
    counts = [max(1, int(packets * weight / total_weight)) for weight in weights]
    counts[-1] += packets - sum(counts)  # keep every descriptor
    descriptors = scenario_descriptors("zipf_mix", packets, seed=seed)
    start_ps = descriptors[0].timestamp_ps
    rewritten, cursor = [], 0
    for window, count in enumerate(counts):
        base = start_ps + window * window_ps
        stride = max(1, window_ps // (count + 1))
        for i in range(count):
            rewritten.append(
                replace(descriptors[cursor], timestamp_ps=base + i * stride)
            )
            cursor += 1
    quiet_per_window = counts[0]
    return rewritten, counts, quiet_per_window


def _feed_by_window(coordinator, control, stream, counts, slices=4):
    """Ingest window-aligned: each scripted window's packets arrive in a
    few slices that never straddle a boundary, so each window's credited
    load is its scripted count (a segment that crosses several short
    windows would otherwise lump its credit into the last one)."""
    fleet_sizes = [len(coordinator.nodes)]
    cursor = 0
    for count in counts:
        chunk = stream[cursor : cursor + count]
        cursor += count
        step = max(1, count // slices)
        for offset in range(0, count, step):
            coordinator.ingest(chunk[offset : offset + step])
        control.step()
        fleet_sizes.append(len(coordinator.nodes))
    coordinator.finalize_telemetry()
    control.step()
    fleet_sizes.append(len(coordinator.nodes))
    return fleet_sizes


def test_autoscale_tracks_surge_and_trickle(bench_emit):
    """The fleet grows under a sustained surge and shrinks on the trickle,
    completing every descriptor exactly once through both transitions."""
    packets = max(1600, PACKETS)
    stream, counts, quiet_per_window = _surge_stream(packets)
    start_nodes = 3
    # The provisioning target is the quiet phase's per-node load: quiet
    # sits in the do-nothing band, the 4x surge crosses scale-up, the
    # quarter-rate trickle falls through scale-down.
    policy = AutoscalePolicy(
        target_node_packets=quiet_per_window / start_nodes,
        min_nodes=2,
        max_nodes=8,
    )
    obs = Observability(window_ps=10**9, alerts=True)
    coordinator = ClusterCoordinator(nodes=start_nodes, telemetry_seed=43, obs=obs)
    control = ClusterControl(coordinator, autoscale=policy)
    fleet_sizes = _feed_by_window(coordinator, control, stream, counts)

    kinds = [action.kind for action in control.actions]
    assert "add_node" in kinds, control.report()
    assert "remove_node" in kinds, control.report()
    peak = max(fleet_sizes)
    assert peak > start_nodes
    assert fleet_sizes[-1] < peak
    # Graceful elasticity: membership churn loses nothing.
    totals = coordinator.cluster_totals()
    assert totals["completed"] == coordinator.ingested == len(stream)
    assert control.flows_lost == 0
    assert coordinator.flow_books()["balanced"]

    print()
    print(format_table(
        [
            {
                "packets": len(stream),
                "quiet_per_window": counts[0],
                "surge_per_window": counts[5],
                "start_nodes": start_nodes,
                "peak_nodes": peak,
                "final_nodes": fleet_sizes[-1],
                "adds": kinds.count("add_node"),
                "removes": kinds.count("remove_node"),
                "flows_moved": control.flows_moved,
            }
        ],
        title="autoscale elasticity — quiet/surge/trickle (zipf_mix keys)",
    ))
    bench_emit("rebalance", {
        "autoscale_peak_nodes": peak,
        "autoscale_final_nodes": fleet_sizes[-1],
        "autoscale_adds": kinds.count("add_node"),
        "autoscale_removes": kinds.count("remove_node"),
        "autoscale_flows_moved": control.flows_moved,
    })

"""Trace interchange — pcap ingest/export and NetFlow v5 throughput.

No paper reference: this is the interchange tier above the cluster layer.
Three properties are checked while the rates are measured:

1. **pcap round trip** — write→read reproduces the (resolution-snapped)
   packet stream exactly, at both byte orders, and the reader sustains a
   reasonable conversion rate.
2. **NetFlow round trip** — every exported flow record survives the
   spec-layout datagram encode/decode with key, counters and
   millisecond-resolution times intact.
3. **Replay equivalence** — the ``run_trace_replay`` experiment's three
   engine paths all match the synthetic run's books on a recorded
   capture (the trace-backed scenario plumbing end to end).

Set ``TRACE_BENCH_PACKETS`` to shrink or grow the workload (CI smoke runs
use a small value).
"""

import os
import time

from repro.core.flow_state import FlowStateTable
from repro.reporting import format_table, run_trace_replay
from repro.trace import (
    NetFlowV5Exporter,
    decode_netflow_v5,
    read_pcap,
    snap_timestamps,
    write_pcap,
)
from repro.traffic import generate_scenario

PACKETS = int(os.environ.get("TRACE_BENCH_PACKETS", "20000"))


def _fingerprint(packets):
    return [(p.key, p.length_bytes, p.timestamp_ps, p.tcp_flags) for p in packets]


def test_pcap_io_throughput(tmp_path, benchmark, bench_emit):
    packets = snap_timestamps(generate_scenario("zipf_mix", PACKETS, seed=23))
    rows = []
    for order in ("little", "big"):
        path = tmp_path / f"{order}.pcap"
        started = time.perf_counter()
        write_pcap(path, packets, byte_order=order)
        write_s = time.perf_counter() - started
        if order == "little":
            trace = benchmark.pedantic(lambda: read_pcap(path), rounds=1, iterations=1)
            read_s = benchmark.stats.stats.total
        else:
            started = time.perf_counter()
            trace = read_pcap(path)
            read_s = time.perf_counter() - started
        assert trace.converted == PACKETS
        assert _fingerprint(trace.packets) == _fingerprint(packets)
        rows.append(
            {
                "byte_order": order,
                "packets": PACKETS,
                "file_kB": round(path.stat().st_size / 1024, 1),
                "bytes_per_pkt": round(path.stat().st_size / PACKETS, 1),
                "write_kpps": round(PACKETS / write_s / 1e3, 1),
                "read_kpps": round(PACKETS / read_s / 1e3, 1),
            }
        )
    print()
    print(format_table(rows, title=f"pcap ingest/export — zipf_mix ({PACKETS} packets)"))
    bench_emit("trace_io", {
        f"pcap_{row['byte_order']}_read_kpps": row["read_kpps"] for row in rows
    })
    bench_emit("trace_io", {
        f"pcap_{row['byte_order']}_write_kpps": row["write_kpps"] for row in rows
    })


def test_netflow_export_throughput(bench_emit):
    table = FlowStateTable(timeout_us=50.0)
    flow_ids = {}
    for packet in generate_scenario("churn", PACKETS, seed=29):
        flow_id = flow_ids.setdefault(packet.key, len(flow_ids))
        table.update(flow_id, packet.key, packet.length_bytes,
                     packet.timestamp_ps, packet.tcp_flags)
    table.expire(now_ps=2**62)
    exported = table.drain_exported()

    started = time.perf_counter()
    datagrams = NetFlowV5Exporter().export(exported)
    encode_s = time.perf_counter() - started
    started = time.perf_counter()
    decoded = decode_netflow_v5(datagrams)
    decode_s = time.perf_counter() - started

    assert len(decoded) == len(exported) > 0
    for original, roundtripped in zip(exported, decoded):
        assert roundtripped.key == original.key
        assert roundtripped.packets == original.packets
        assert roundtripped.octets == original.bytes
    wire_bytes = sum(len(d) for d in datagrams)
    print()
    print(format_table(
        [
            {
                "flows": len(exported),
                "datagrams": len(datagrams),
                "wire_kB": round(wire_bytes / 1024, 1),
                "encode_krec_s": round(len(exported) / encode_s / 1e3, 1),
                "decode_krec_s": round(len(decoded) / decode_s / 1e3, 1),
            }
        ],
        title=f"NetFlow v5 export — churn ({PACKETS} packets)",
    ))
    bench_emit("trace_io", {
        "netflow_encode_krec_s": round(len(exported) / encode_s / 1e3, 1),
        "netflow_decode_krec_s": round(len(decoded) / decode_s / 1e3, 1),
    })


def test_trace_replay_equivalence_end_to_end():
    count = max(600, PACKETS // 10)
    result = run_trace_replay(scenario="zipf_mix", packet_count=count, seed=31)
    print()
    print(format_table(result["rows"], title=f"trace replay — zipf_mix ({count} packets)"))
    assert result["pcap"]["converted"] == count
    for row in result["rows"]:
        assert row["matches_synthetic"], row
    cluster_row = result["rows"][-1]
    assert cluster_row["netflow_roundtrip"], cluster_row
    assert cluster_row[f"top10_match"], cluster_row

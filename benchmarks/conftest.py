"""Benchmark-suite bootstrap: path setup plus the shared BENCH emitter.

Every benchmark module takes the session-scoped ``bench_emit`` fixture
and calls it with its area name and a dict of named figures; the call
merges into ``BENCH_<area>.json`` at the repository root (see
:mod:`repro.obs.bench`).  Checked-in BENCH files are the machine-readable
perf trajectory: CI validates them against the ``repro.obs.bench/v1``
schema and uploads them as artifacts.
"""

import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_SRC = _REPO_ROOT / "src"

try:
    import repro  # noqa: F401
except ImportError:
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

import pytest

from repro.obs.bench import emit_bench_result


@pytest.fixture(scope="session")
def bench_emit():
    """Callable ``(area, results, metrics=None) -> Path`` writing BENCH files.

    Results merge by key into ``BENCH_<area>.json`` at the repository
    root, so every test of one area contributes to one document.  Set
    ``REPRO_BENCH_DIR`` to redirect the output (tests use a tmp dir).
    """

    def _emit(area, results, metrics=None):
        return emit_bench_result(area, results, directory=_REPO_ROOT, metrics=metrics)

    return _emit

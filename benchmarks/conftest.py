"""Benchmark-suite bootstrap: reuse the repository-root conftest path setup."""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent.parent / "src"

try:
    import repro  # noqa: F401
except ImportError:
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))

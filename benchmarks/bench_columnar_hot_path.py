"""Columnar hot path — host-side ingest rate, object vs block representation.

No paper reference: this benchmarks the reproduction's own batch machinery.
The columnar path exists to make the *host* faster — the simulated device is
the same three-stage table either way — so the figure of merit here is
host-side ingest rate (million descriptors per second of wall clock), not
simulated throughput.  Three properties are checked:

1. **Speedup** — on ``zipf_mix``, the columnar block path ingests at least
   3x faster host-side than the object path at 4 shards (the acceptance
   gate), and the advantage holds at 1 and 8 shards.
2. **Equivalence** — both paths report identical outcome totals in the same
   run that produces the timing figures (the deep equivalence battery lives
   in ``tests/test_columns.py``).
3. **Trajectory** — per-shard-count rates for both representations are
   recorded in ``BENCH_columnar.json``, so the speedup is a number the
   repo's history tracks rather than a one-off claim.

Set ``COLUMNAR_BENCH_PACKETS`` to shrink or grow the workload (CI smoke
runs use a small value).
"""

import os

from repro.core.config import small_test_config
from repro.engine import ShardedFlowLUT
from repro.obs import Stopwatch
from repro.reporting import format_table
from repro.traffic import scenario_block, scenario_descriptors

PACKETS = int(os.environ.get("COLUMNAR_BENCH_PACKETS", "8000"))
SHARD_COUNTS = (1, 4, 8)
BATCH = 512
MIN_SPEEDUP_AT_4 = 3.0


def _drive_objects(descriptors, shards):
    engine = ShardedFlowLUT(shards=shards, config=small_test_config())
    watch = Stopwatch()
    for offset in range(0, len(descriptors), BATCH):
        engine.process_batch(descriptors[offset : offset + BATCH])
    return engine, watch.elapsed_s


def _drive_block(block, shards):
    engine = ShardedFlowLUT(shards=shards, config=small_test_config())
    count = len(block)
    watch = Stopwatch()
    for offset in range(0, count, BATCH):
        engine.process_batch(block.take(range(offset, min(offset + BATCH, count))))
    return engine, watch.elapsed_s


def test_columnar_ingest_speedup(benchmark, bench_emit):
    descriptors = scenario_descriptors("zipf_mix", PACKETS, seed=17)
    block = scenario_block("zipf_mix", PACKETS, seed=17)

    def measure():
        rows = []
        for shards in SHARD_COUNTS:
            # Interleaved pairs: drift across the window hits both paths alike.
            object_runs, block_runs = [], []
            for _ in range(3):
                object_runs.append(_drive_objects(descriptors, shards))
                block_runs.append(_drive_block(block, shards))
            object_engine = object_runs[0][0]
            block_engine = block_runs[0][0]
            object_wall = min(wall for _, wall in object_runs)
            block_wall = min(wall for _, wall in block_runs)
            rows.append(
                {
                    "shards": shards,
                    "object_mdesc_s": PACKETS / object_wall / 1e6,
                    "columnar_mdesc_s": PACKETS / block_wall / 1e6,
                    "speedup": object_wall / block_wall,
                    "totals_match": (
                        object_engine.hits, object_engine.misses, object_engine.new_flows
                    ) == (block_engine.hits, block_engine.misses, block_engine.new_flows),
                }
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    print()
    print(format_table(
        [
            {
                "shards": row["shards"],
                "object_mdesc_s": round(row["object_mdesc_s"], 3),
                "columnar_mdesc_s": round(row["columnar_mdesc_s"], 3),
                "speedup": round(row["speedup"], 2),
                "totals_match": row["totals_match"],
            }
            for row in rows
        ],
        title=f"columnar vs object host-side ingest — zipf_mix ({PACKETS} packets)",
    ))

    by_shards = {row["shards"]: row for row in rows}
    for row in rows:
        assert row["totals_match"], row
        assert row["speedup"] > 1.0, row
    assert by_shards[4]["speedup"] >= MIN_SPEEDUP_AT_4, by_shards[4]

    benchmark.extra_info["rows"] = rows
    results = {}
    for row in rows:
        shards = row["shards"]
        results[f"object_shards_{shards}_mdesc_s"] = round(row["object_mdesc_s"], 4)
        results[f"columnar_shards_{shards}_mdesc_s"] = round(row["columnar_mdesc_s"], 4)
        results[f"speedup_shards_{shards}"] = round(row["speedup"], 3)
    bench_emit("columnar", results)

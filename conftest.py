"""Pytest bootstrap: make ``src/`` importable without installation.

The canonical workflow installs the package (``pip install -e .``), but the
test and benchmark suites should also run from a plain checkout — useful in
offline or sandboxed environments — so the source layout is added to
``sys.path`` here when the package is not already installed.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"

try:
    import repro  # noqa: F401
except ImportError:
    if str(_SRC) not in sys.path:
        sys.path.insert(0, str(_SRC))
